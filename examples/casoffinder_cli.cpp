// casoffinder_cli — a Cas-OFFinder-compatible command-line front end.
//
//   $ ./examples/casoffinder_cli input.txt S out.txt
//
// Mirrors the upstream invocation `cas-offinder {input} {C|G|A} {output}`:
// the second argument picks the compute path —
//   C  serial CPU reference
//   G  the simulated accelerator via the SYCL host program (as the paper's
//      migrated application)
//   O  the simulated accelerator via the OpenCL host program (the original)
// plus engine knobs for work-group size, comparer variant and chunk size.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <thread>

#include "core/engine.hpp"
#include "core/engine_stream.hpp"
#include "core/index.hpp"
#include "core/scoring.hpp"
#include "fault/fault.hpp"
#include "genome/synth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  util::cli cli("casoffinder_cli", "Cas-OFFinder-compatible off-target search");
  cli.positional("input", "input file (genome, pattern, queries)", true);
  cli.positional("device",
                 "C = serial CPU, O = OpenCL host, G/S = SYCL host (buffers), "
                 "U = SYCL host (USM), P = SYCL host (2-bit packed)",
                 false);
  cli.positional("output", "output file ('-' or empty = stdout)", false);
  cli.opt("wg", "work-group size (0 = backend default)", "0");
  cli.opt("variant", "comparer variant: base|opt1|opt2|opt3|opt4|opt5|opt6", "base");
  cli.opt("chunk", "max device chunk bytes", "4194304");
  cli.flag("profile", "print the kernel hotspot profile");
  cli.flag("score", "print MIT specificity scores per guide");
  cli.flag("stream", "stream chunks from the FASTA file(s) instead of "
                     "loading the genome (O(chunk) host memory)");
  cli.flag("batch", "one comparer launch per chunk covering all queries");
  cli.opt("queues", "host threads each driving a device pipeline (per "
                    "device when --devices > 1)", "1");
  cli.opt("devices", "shard streamed chunks across N simulated devices, "
                     "each with its own pool and pipelines (records stay "
                     "byte-identical for any N)", "1");
  cli.opt("shard-policy", "chunk-to-device assignment when --devices > 1: "
                          "round-robin | least-loaded", "round-robin");
  cli.opt("trace-out", "write a Chrome trace-event JSON (Perfetto-loadable) "
                       "of the run", "");
  cli.opt("metrics-json", "write the obs metrics snapshot (counters/gauges/"
                          "histograms) as JSON", "");
  cli.opt("max-entries", "cap per-chunk device entry allocations (0 = "
                         "worst-case sizing); streaming runs recover from "
                         "an undersized cap by retrying/splitting", "0");
  cli.opt("fault", "fault-injection plan, e.g. "
                   "'spill.write=hit:1,dev.launch=prob:0.01:7' "
                   "(sites: dev.alloc dev.launch pipe.event queue.push "
                   "queue.pop spill.write spill.merge entry.clamp "
                   "index.persist index.load serve.admit serve.batch "
                   "shard.assign; modes: always, hit:N, prob:P[:seed], off; "
                   "a site@N suffix targets shard ordinal N, e.g. "
                   "'dev.launch@1=always' kills device 1 of a --devices set)",
          "");
  cli.opt("build-index", "build the genome/PAM index (decode + finder over "
                         "every chunk), persist it to this .cofidx path and "
                         "exit", "");
  cli.opt("index", ".cofidx cache path: load it if present (warm — no FASTA "
                   "decode, no finder launches), otherwise build from the "
                   "input genome and persist it here, then answer the "
                   "queries with comparer-only launches", "");
  cli.multi("query", "guide RNA GUIDE[:MM] (repeatable; replaces the input "
                     "file's query list; MM defaults to 5)");
  cli.flag("serve", "daemon mode: keep the index device-resident and answer "
                    "GUIDE[:MM] requests line-by-line from stdin (records "
                    "stream to the output as each request completes; "
                    "concurrent requests coalesce into one launch)");
  cli.opt("serve-window", "serve mode micro-batching window in microseconds "
                          "(0 = coalesce only the already-queued backlog)",
          "200");
  cli.opt("serve-batch", "serve mode cap on requests coalesced into one "
                         "launch", "64");
  cli.opt("stats-interval", "serve mode: emit a one-line stats JSON heartbeat "
                            "every N seconds (0 = off) to stderr, or to "
                            "--stats-out when set", "0");
  cli.opt("stats-out", "serve mode: append stats heartbeats to this file "
                       "(JSON lines) instead of stderr", "");
  cli.opt("slo-us", "serve mode latency SLO in microseconds: !health reports "
                    "degraded while the windowed p99 exceeds it (0 = no "
                    "latency SLO)", "0");
  if (!cli.parse(argc, argv)) return 1;

  util::set_log_level(util::log_level::warn);
  auto cfg = cof::read_input_file(cli.get_positional("input"));

  // Repeated --query GUIDE[:MM] replaces the input file's query list — the
  // serving shape the index exists for: one cached index, arbitrary guides.
  if (!cli.get_multi("query").empty()) {
    cfg.queries.clear();
    for (const std::string& spec : cli.get_multi("query")) {
      std::string seq = spec;
      unsigned long long mm = 5;
      if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
        seq = spec.substr(0, colon);
        COF_CHECK_MSG(util::parse_u64(spec.substr(colon + 1), mm),
                      "--query wants GUIDE[:MM]: " + spec);
        COF_CHECK_MSG(mm <= 0xFFFF, "--query mismatch count " +
                                        std::to_string(mm) +
                                        " out of range (max 65535): " + spec);
      }
      cfg.queries.push_back({seq, static_cast<util::u16>(mm)});
    }
  }

  cof::engine_options opt;
  const std::string dev = cli.get_positional("device").empty()
                              ? "G"
                              : cli.get_positional("device");
  switch (dev[0]) {
    case 'C': case 'c': opt.backend = cof::backend_kind::serial; break;
    case 'O': case 'o': opt.backend = cof::backend_kind::opencl; break;
    case 'G': case 'g': case 'S': case 's':
      opt.backend = cof::backend_kind::sycl;
      break;
    case 'U': case 'u': opt.backend = cof::backend_kind::sycl_usm; break;
    case 'P': case 'p': opt.backend = cof::backend_kind::sycl_twobit; break;
    default: util::die("unknown device (use C, O, G or S): " + dev);
  }
  opt.wg_size = cli.get_u64("wg");
  opt.max_chunk = cli.get_u64("chunk");
  opt.batch_queries = cli.get_flag("batch");
  opt.num_queues = cli.get_u64("queues");
  opt.num_devices = cli.get_u64("devices");
  opt.shard = cof::parse_shard_policy(cli.get("shard-policy"));
  opt.trace_out = cli.get("trace-out");
  opt.metrics_json = cli.get("metrics-json");
  opt.max_entries = cli.get_u64("max-entries");
  opt.faults = cli.get("fault");
  const std::string vname = cli.get("variant");
  bool found_variant = false;
  for (int v = 0; v < cof::kNumComparerVariants; ++v) {
    if (vname == cof::comparer_variant_name(static_cast<cof::comparer_variant>(v))) {
      opt.variant = static_cast<cof::comparer_variant>(v);
      found_variant = true;
    }
  }
  COF_CHECK_MSG(found_variant, "unknown variant: " + vname);

  prof::profiler profiler;
  if (cli.get_flag("profile")) {
    opt.counting = true;
    opt.profiler = &profiler;
  }

  // --build-index: the cold phase alone — decode + finder over every chunk,
  // persist the result, exit. Later runs pass the file via --index.
  if (!cli.get("build-index").empty()) {
    const std::string ipath = cli.get("build-index");
    COF_CHECK_MSG(opt.backend != cof::backend_kind::serial,
                  "--build-index needs a device backend (O, G, S, U or P)");
    util::stopwatch bsw;
    try {
      // Standalone build runs outside the engines, so arm the fault
      // registry here — injected persist failures die cleanly below.
      fault::scope fault_guard(opt.faults);
      const genome::genome_t g = cof::load_configured_genome(cfg);
      const auto idx = cof::build_index(g, cfg.pattern, opt);
      cof::save_index(ipath, idx);
      std::fprintf(stderr,
                   "index: built %zu chunks, %llu candidate sites over %llu "
                   "bases in %.3fs -> %s\n",
                   idx.chunks.size(),
                   static_cast<unsigned long long>(idx.total_hits()),
                   static_cast<unsigned long long>(idx.source_bases),
                   bsw.seconds(), ipath.c_str());
    } catch (const std::exception& e) {
      util::die(e.what());
    }
    return 0;
  }
  opt.index_path = cli.get("index");

  // --serve: the resident daemon mode. Resolve the index once (load the
  // .cofidx cache when present, build and optionally persist otherwise),
  // hold it device-resident in a serve::server, then answer line-protocol
  // requests from stdin: one `GUIDE[:MM]` per line, records for each
  // request written as soon as its future resolves, in submission order.
  if (cli.get_flag("serve")) {
    COF_CHECK_MSG(opt.backend != cof::backend_kind::serial,
                  "--serve needs a device backend (O, G, S, U or P)");
    obs::run_scope obs_guard(!opt.trace_out.empty() ||
                             !opt.metrics_json.empty());
    fault::scope fault_guard(opt.faults);
    try {
      cof::genome_index idx;
      if (!opt.index_path.empty() &&
          std::ifstream(opt.index_path, std::ios::binary).good()) {
        idx = cof::load_index(opt.index_path);
        cof::check_index_compatible(idx, cfg);
        std::fprintf(stderr, "serve: index cache hit (%s)\n",
                     opt.index_path.c_str());
      } else {
        const genome::genome_t g = cof::load_configured_genome(cfg);
        idx = cof::build_index(g, cfg.pattern, opt);
        if (!opt.index_path.empty()) {
          cof::save_index(opt.index_path, idx);
          std::fprintf(stderr, "serve: index built and persisted to %s\n",
                       opt.index_path.c_str());
        }
      }
      cof::serve::server_options sopt;
      sopt.engine = opt;
      sopt.batch_window_us = cli.get_u64("serve-window");
      sopt.max_batch = cli.get_u64("serve-batch");
      sopt.slo_us = cli.get_u64("slo-us");
      cof::serve::server srv(idx, sopt);
      std::fprintf(stderr,
                   "serve: %zu chunks resident-capable, pattern %s; reading "
                   "GUIDE[:MM] or !stats/!health from stdin\n",
                   idx.chunks.size(), idx.pattern.c_str());

      // --stats-interval heartbeat: a sidecar thread appends the live stats
      // snapshot as JSON lines (to --stats-out, else stderr) until the
      // input loop finishes. 100 ms polling keeps shutdown prompt without a
      // condition variable.
      const util::u64 hb_interval_s = cli.get_u64("stats-interval");
      const std::string hb_path = cli.get("stats-out");
      std::atomic<bool> hb_stop{false};
      std::thread hb_thread;
      auto emit_stats = [&srv, &hb_path] {
        const std::string line = srv.stats_json();
        if (!hb_path.empty()) {
          std::ofstream f(hb_path, std::ios::app);
          if (f.good()) f << line << "\n";
        } else {
          std::fprintf(stderr, "%s\n", line.c_str());
        }
      };
      if (hb_interval_s > 0) {
        hb_thread = std::thread([&] {
          obs::set_thread_name("serve.stats");
          util::u64 slept_ms = 0;
          while (!hb_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            slept_ms += 100;
            if (slept_ms < hb_interval_s * 1000) continue;
            slept_ms = 0;
            emit_stats();
          }
        });
      }

      genome::genome_t names_only;
      for (const auto& n : idx.chrom_names) names_only.chroms.push_back({n, ""});
      const std::string outp = cli.get_positional("output");
      std::ofstream out_file;
      if (!outp.empty() && outp != "-") {
        out_file.open(outp, std::ios::binary);
        COF_CHECK_MSG(out_file.good(), "cannot open output file: " + outp);
      }
      std::ostream& out = out_file.is_open()
                              ? static_cast<std::ostream&>(out_file)
                              : std::cout;

      struct in_flight {
        std::string guide;
        std::future<cof::serve::request_result> fut;
      };
      std::deque<in_flight> pending;
      auto drain = [&](bool all) {
        while (!pending.empty() &&
               (all || pending.front().fut.wait_for(std::chrono::seconds(0)) ==
                           std::future_status::ready)) {
          auto req = std::move(pending.front());
          pending.pop_front();
          try {
            const auto r = req.fut.get();
            out << "# " << req.guide << " records=" << r.records.size()
                << " id=" << r.request_id
                << " queue_us=" << r.timing.queue_us
                << " batch_wait_us=" << r.timing.batch_wait_us
                << " device_us=" << r.timing.device_us
                << " demux_us=" << r.timing.demux_us << "\n"
                << cof::format_records(r.records, {req.guide}, names_only);
            out.flush();
          } catch (const std::exception& e) {
            out << "# " << req.guide << " error=" << e.what() << "\n";
            out.flush();
          }
        }
      };

      std::string line;
      while (std::getline(std::cin, line)) {
        const std::string spec(util::trim(line));
        if (spec.empty() || spec[0] == '#') continue;
        // Control lines: `!stats` answers with the one-line live snapshot,
        // `!health` with {"health":"ok|degraded|draining"} — both on the
        // record output stream so a driving client reads one JSON line per
        // control request, interleaved with its record blocks.
        if (spec[0] == '!') {
          if (spec == "!stats") {
            out << srv.stats_json() << "\n";
          } else if (spec == "!health") {
            out << "{\"health\":\"" << cof::serve::health_name(srv.health())
                << "\"}\n";
          } else {
            out << "# " << spec << " error=unknown control line\n";
          }
          out.flush();
          continue;
        }
        std::string seq = spec;
        unsigned long long mm = 5;
        if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
          seq = spec.substr(0, colon);
          if (!util::parse_u64(spec.substr(colon + 1), mm) || mm > 0xFFFF) {
            out << "# " << spec << " error=wants GUIDE[:MM]\n";
            out.flush();
            continue;
          }
        }
        try {
          pending.push_back(
              {seq, srv.submit(seq, static_cast<util::u16>(mm))});
        } catch (const std::exception& e) {
          out << "# " << seq << " error=" << e.what() << "\n";
          out.flush();
        }
        drain(/*all=*/false);  // stream completed requests while reading
      }
      drain(/*all=*/true);
      if (hb_thread.joinable()) {
        hb_stop.store(true);
        hb_thread.join();
        emit_stats();  // final beat with the drained totals
      }
      srv.shutdown();
      const auto st = srv.stats();
      std::fprintf(stderr,
                   "serve: %llu requests in %llu batches (max batch %llu, "
                   "%llu rejected, %llu failed, %llu batch retries); "
                   "residency %llu uploads / %llu reuses / %llu evictions\n",
                   static_cast<unsigned long long>(st.admitted),
                   static_cast<unsigned long long>(st.batches),
                   static_cast<unsigned long long>(st.max_batch_size),
                   static_cast<unsigned long long>(st.rejected),
                   static_cast<unsigned long long>(st.failed),
                   static_cast<unsigned long long>(st.batch_retries),
                   static_cast<unsigned long long>(srv.session().chunk_misses()),
                   static_cast<unsigned long long>(srv.session().chunk_hits()),
                   static_cast<unsigned long long>(
                       srv.session().chunk_evictions()));
      if (obs::enabled()) {
        if (!opt.trace_out.empty()) obs::write_trace(opt.trace_out);
        if (!opt.metrics_json.empty()) {
          obs::metrics_registry::global().write_json(opt.metrics_json);
        }
      }
    } catch (const std::exception& e) {
      util::die(e.what());
    }
    return 0;
  }

  // --index routes through the streaming engine's index/query split even
  // without --stream: warm runs never decode FASTA or launch the finder.
  if (cli.get_flag("stream") || !opt.index_path.empty()) {
    COF_CHECK_MSG(opt.backend != cof::backend_kind::serial,
                  "--stream needs a device backend (O, G, S, U or P)");
    // Unrecoverable failures (exhausted fault retries, stalled queues)
    // surface as exceptions with the failing site in the message; report
    // them as a clean fatal error instead of std::terminate.
    cof::streamed_outcome streamed;
    try {
      streamed = cof::run_search_streaming(cfg, cfg.genome_path, opt);
    } catch (const std::exception& e) {
      util::die(e.what());
    }
    const auto& rec = streamed.metrics.recovery;
    if (rec.overflow_retries + rec.chunk_splits + rec.spill_retries != 0 ||
        streamed.used_index) {
      std::string index_part;
      if (streamed.used_index) {
        index_part = util::format(
            ", index cache %s (%llu chunk uploads, %llu device-resident "
            "reuses)",
            streamed.index_cache_hit ? "hit" : "miss",
            static_cast<unsigned long long>(streamed.index_chunk_misses),
            static_cast<unsigned long long>(streamed.index_chunk_hits));
      }
      std::fprintf(stderr,
                   "recovery: %llu overflow retries, %llu chunk splits, "
                   "%llu recovered overflows, %llu spill retries%s\n",
                   static_cast<unsigned long long>(rec.overflow_retries),
                   static_cast<unsigned long long>(rec.chunk_splits),
                   static_cast<unsigned long long>(rec.recovered_overflows),
                   static_cast<unsigned long long>(rec.spill_retries),
                   index_part.c_str());
    }
    std::fprintf(stderr,
                 "%s (streamed): %zu records, %.3fs, %llu bases through "
                 "%zu chunks (peak chunk %s)\n",
                 cof::backend_name(opt.backend), streamed.records.size(),
                 streamed.metrics.elapsed_seconds,
                 static_cast<unsigned long long>(streamed.streamed_bases),
                 streamed.metrics.chunks,
                 util::human_bytes(streamed.peak_chunk_bytes).c_str());
    if (streamed.device_shards.size() > 1) {
      for (const auto& ds : streamed.device_shards) {
        std::fprintf(stderr, "  %s: %llu chunks, %llu steals%s\n",
                     ds.name.c_str(),
                     static_cast<unsigned long long>(ds.chunks),
                     static_cast<unsigned long long>(ds.steals),
                     ds.failed ? "  [FAILED — degraded to survivors]" : "");
      }
      if (streamed.shard_reassigns != 0) {
        std::fprintf(stderr, "  %llu chunk reassignments off dead devices\n",
                     static_cast<unsigned long long>(streamed.shard_reassigns));
      }
    }
    genome::genome_t names_only;
    for (const auto& n : streamed.chrom_names) {
      names_only.chroms.push_back({n, ""});
    }
    std::vector<std::string> qs;
    for (const auto& q : cfg.queries) qs.push_back(q.seq);
    const std::string text = cof::format_records(streamed.records, qs, names_only);
    const std::string outp = cli.get_positional("output");
    if (outp.empty() || outp == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(outp, std::ios::binary);
      COF_CHECK_MSG(out.good(), "cannot open output file: " + outp);
      out << text;
    }
    return 0;
  }

  util::stopwatch load_sw;
  const genome::genome_t g = cof::load_configured_genome(cfg);
  std::fprintf(stderr, "loaded %s: %zu sequences, %s (%.2fs)\n", g.assembly.c_str(),
               g.chroms.size(), util::human_bytes(g.total_bases()).c_str(),
               load_sw.seconds());

  const auto result = cof::run_search(cfg, g, opt);
  std::fprintf(stderr,
               "%s/%s: %zu records, %.3fs elapsed (%zu chunks, %llu loci, "
               "%s h2d, %s d2h)\n",
               cof::backend_name(opt.backend),
               cof::comparer_variant_name(opt.variant), result.records.size(),
               result.metrics.elapsed_seconds, result.metrics.chunks,
               static_cast<unsigned long long>(result.metrics.pipeline.total_loci),
               util::human_bytes(result.metrics.pipeline.h2d_bytes).c_str(),
               util::human_bytes(result.metrics.pipeline.d2h_bytes).c_str());

  std::vector<std::string> qseqs;
  for (const auto& q : cfg.queries) qseqs.push_back(q.seq);
  const std::string text = cof::format_records(result.records, qseqs, g);
  const std::string out_path = cli.get_positional("output");
  if (out_path.empty() || out_path == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    COF_CHECK_MSG(out.good(), "cannot open output file: " + out_path);
    out << text;
  }

  if (cli.get_flag("score")) {
    const auto reports = cof::scoring::score_search(cfg, result.records);
    std::fprintf(stderr, "\nguide specificity (MIT/Hsu):\n%s",
                 cof::scoring::format_report(reports).c_str());
  }

  if (cli.get_flag("profile")) {
    std::fprintf(stderr, "\nkernel profile:\n%s", profiler.report().c_str());
    std::fprintf(stderr, "comparer share of kernel time: %.1f%%\n",
                 100.0 * profiler.hotspot_share(
                             std::string("comparer/") +
                             cof::comparer_variant_name(opt.variant)));
  }
  return 0;
}
