// migration_tour — a guided, executable walk through the paper's migration
// paths (§III, Tables I-VI). Each stop prints the OpenCL idiom and its SYCL
// replacement, runs both against the shared engine, and checks they agree.
//
//   $ ./examples/migration_tour
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/pipeline.hpp"
#include "genome/synth.hpp"
#include "oclsim/cl.hpp"
#include "oclsim/cl_objects.hpp"
#include "syclsim/sycl.hpp"
#include "util/log.hpp"

namespace {

#define CK(x) COF_CHECK((x) == CL_SUCCESS)

void stop(const char* title) { std::printf("\n=== %s ===\n", title); }

void code(const char* label, const char* snippet) {
  std::printf("%-7s | %s\n", label, snippet);
}

// --- Table I: the host-program skeleton ------------------------------------

void tour_programming_steps() {
  stop("Table I — programming steps");
  code("OpenCL", "platform -> device -> context -> queue -> buffers -> program");
  code("", "  -> build -> kernels -> args -> enqueue -> read -> events -> release");
  code("SYCL", "selector -> queue -> buffers -> lambda kernels -> submit");
  code("", "  -> accessors (implicit transfer) -> events -> RAII cleanup");
  std::printf("steps: %zu vs %zu\n", cof::opencl_programming_steps().size(),
              cof::sycl_programming_steps().size());

  // Execute both skeletons: construct a pipeline per model, then tear down.
  const long before = oclsim::census::live().load();
  {
    cof::pipeline_options opt;
    auto ocl = cof::make_opencl_pipeline(opt);   // 13 explicit steps inside
    auto sycl_p = cof::make_sycl_pipeline(opt);  // 8 implicit ones
    std::printf("live OpenCL API objects while running: %ld; ",
                oclsim::census::live().load() - before);
  }
  std::printf("after destruction: %ld (manual releases balanced)\n",
              oclsim::census::live().load() - before);
}

// --- Table II: memory management --------------------------------------------

void tour_memory_management(cl_context ctx, cl_command_queue q) {
  stop("Table II — memory management");
  code("OpenCL", "d = clCreateBuffer(ctx, flags, BS, h, err); ... clReleaseMemObject(d);");
  code("SYCL", "buffer<T, 1> d(h, WS);  // runtime releases and writes back");

  std::vector<float> host(64);
  std::iota(host.begin(), host.end(), 0.0f);

  cl_int err;
  cl_mem d = clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                            host.size() * sizeof(float), host.data(), &err);
  CK(err);
  std::vector<float> ocl_back(host.size());
  CK(clEnqueueReadBuffer(q, d, CL_TRUE, 0, host.size() * sizeof(float),
                         ocl_back.data(), 0, nullptr, nullptr));
  CK(clReleaseMemObject(d));  // explicit release

  std::vector<float> sycl_back(host.size());
  {
    sycl::queue sq{sycl::gpu_selector{}};
    sycl::buffer<float, 1> buf(host.data(), sycl::range<1>(host.size()));
    sq.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_read>(cgh);
      cgh.copy(acc, sycl_back.data());
    });
  }  // <- buffer destructor: wait, write back, free
  COF_CHECK(ocl_back == host && sycl_back == host);
  std::printf("both paths round-tripped %zu floats\n", host.size());
}

// --- Table III: data movement -----------------------------------------------

void tour_data_movement(cl_context ctx, cl_command_queue q) {
  stop("Table III — data movement with offsets");
  code("OpenCL", "clEnqueueWriteBuffer(q, dst, blocking, offset, cb, src, 0,0,0);");
  code("SYCL", "auto d = dst.get_access<sycl_write>(cgh, range, offset);");
  code("", "cgh.copy(src, d); ... .wait();");

  const size_t off = 100, cb = 40;
  std::vector<char> payload(cb);
  std::iota(payload.begin(), payload.end(), 1);

  cl_int err;
  cl_mem d = clCreateBuffer(ctx, CL_MEM_READ_WRITE, 256, nullptr, &err);
  CK(err);
  CK(clEnqueueWriteBuffer(q, d, CL_TRUE, off, cb, payload.data(), 0, nullptr,
                          nullptr));
  std::vector<char> ocl_out(cb);
  CK(clEnqueueReadBuffer(q, d, CL_TRUE, off, cb, ocl_out.data(), 0, nullptr, nullptr));
  CK(clReleaseMemObject(d));

  std::vector<char> sycl_out(cb);
  {
    sycl::queue sq{sycl::gpu_selector{}};
    sycl::buffer<char, 1> buf{sycl::range<1>(256)};
    sq.submit([&](sycl::handler& cgh) {
        auto acc = buf.get_access<sycl::sycl_write>(cgh, sycl::range<1>(cb),
                                                    sycl::id<1>(off));
        cgh.copy(payload.data(), acc);
      }).wait();
    sq.submit([&](sycl::handler& cgh) {
        auto acc = buf.get_access<sycl::sycl_read>(cgh, sycl::range<1>(cb),
                                                   sycl::id<1>(off));
        cgh.copy(acc, sycl_out.data());
      }).wait();
  }
  COF_CHECK(ocl_out == payload && sycl_out == payload);
  std::printf("offset %zu transfers agree\n", off);
}

// --- Tables IV-VI: indexing, atomics, kernel execution ----------------------

void tour_kernel_side() {
  stop("Tables IV-V — coordinate indexing, barrier, atomic increment");
  code("OpenCL", "get_global_id(0); get_group_id(0); get_local_size(0);");
  code("", "barrier(CLK_LOCAL_MEM_FENCE); old = atomic_inc(var);");
  code("SYCL", "item.get_global_id(0); item.get_group(0); item.get_local_range(0);");
  code("", "item.barrier(fence_space::local_space);");
  code("", "atomic_ref<T, relaxed, device, global_space>(val).fetch_add(1);");

  // Run the SYCL side (the OpenCL twin is exercised by the real pipelines
  // and bench/table2to6_migration).
  const size_t N = 1024, WG = 128;
  util::u32 appended = 0;
  std::vector<util::u32> order(N, 0);
  {
    sycl::queue q{sycl::gpu_selector{}};
    sycl::buffer<util::u32, 1> cnt(&appended, sycl::range<1>(1));
    sycl::buffer<util::u32, 1> ord(order.data(), sycl::range<1>(N));
    q.submit([&](sycl::handler& cgh) {
      auto c = cnt.get_access<sycl::sycl_read_write>(cgh);
      auto o = ord.get_access<sycl::sycl_write>(cgh);
      sycl::local_accessor<util::u32, 1> tile(sycl::range<1>(WG), cgh);
      cgh.parallel_for(
          sycl::nd_range<1>(sycl::range<1>(N), sycl::range<1>(WG)),
          [=](sycl::nd_item<1> it) {
            tile[it.get_local_id(0)] = static_cast<util::u32>(it.get_global_id(0));
            it.barrier(sycl::access::fence_space::local_space);
            sycl::atomic_ref<util::u32, sycl::memory_order::relaxed,
                             sycl::memory_scope::device,
                             sycl::access::address_space::global_space>
                counter(c[0]);
            const util::u32 slot = counter.fetch_add(1u);
            o[slot] = tile[it.get_local_id(0)];
          });
    });
  }
  COF_CHECK(appended == N);
  // atomic append wrote a permutation of the ids
  std::vector<util::u32> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (util::u32 i = 0; i < N; ++i) COF_CHECK(sorted[i] == i);
  std::printf("atomic append produced a permutation of %zu ids\n", N);

  stop("Table VI — executing the finder kernel");
  code("OpenCL", "clSetKernelArg(k, 0, ...); ... clEnqueueNDRangeKernel(q, k, 1, ...);");
  code("SYCL", "h.parallel_for(nd_range<1>(gws, lws), [=](nd_item<1> it) {");
  code("", "  finder(it, ...); });  // plain function called from the lambda");

  auto g = genome::generate(genome::hg19_like(32768, 5));
  const auto pat = cof::make_pattern("NNNNNNNNNNNNNNNNNNNNNRG");
  cof::pipeline_options popt;
  auto ocl = cof::make_opencl_pipeline(popt);
  auto syc = cof::make_sycl_pipeline(popt);
  const auto& seq = g.chroms[0].seq;
  ocl->load_chunk({seq.data(), seq.size()});
  syc->load_chunk({seq.data(), seq.size()});
  const auto n_ocl = ocl->run_finder(pat);
  const auto n_syc = syc->run_finder(pat);
  COF_CHECK(n_ocl == n_syc);
  std::printf("finder agrees through both host programs: %u PAM loci in %s\n", n_ocl,
              g.chroms[0].name.c_str());
}

}  // namespace

int main() {
  util::set_log_level(util::log_level::warn);
  std::printf("A tour of the OpenCL -> SYCL migration paths (paper §III).\n");

  cl_platform_id plat;
  cl_device_id dev;
  cl_uint n;
  CK(clGetPlatformIDs(1, &plat, &n));
  CK(clGetDeviceIDs(plat, CL_DEVICE_TYPE_GPU, 1, &dev, &n));
  cl_int err;
  cl_context ctx = clCreateContext(nullptr, 1, &dev, nullptr, nullptr, &err);
  CK(err);
  cl_command_queue q = clCreateCommandQueue(ctx, dev, CL_QUEUE_PROFILING_ENABLE, &err);
  CK(err);

  tour_programming_steps();
  tour_memory_management(ctx, q);
  tour_data_movement(ctx, q);
  tour_kernel_side();

  CK(clReleaseCommandQueue(q));
  CK(clReleaseContext(ctx));
  std::printf("\nAll migration stops verified.\n");
  return 0;
}
