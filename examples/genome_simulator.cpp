// genome_simulator — generate synthetic human-like assemblies (the stand-in
// for the UCSC hg19/hg38 downloads), optionally plant known off-target
// sites, and write everything to FASTA for use with casoffinder_cli.
//
//   $ ./examples/genome_simulator --assembly hg19 --scale 4096 --out /tmp/hg19.fa \
//         --plant-guide GGCCGACCTGTCGCTGACGCNGG --plant-count 10 --plant-mm 2
#include <cstdio>

#include "core/pattern.hpp"
#include "genome/fasta.hpp"
#include "genome/twobit_file.hpp"
#include "genome/synth.hpp"
#include "genome/twobit.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  util::cli cli("genome_simulator", "Generate synthetic hg19/hg38-like assemblies");
  cli.opt("assembly", "hg19 or hg38", "hg19");
  cli.opt("scale", "divide real chromosome lengths by this", "4096");
  cli.opt("seed", "generator seed", "0");
  cli.opt("out", "output FASTA path (empty = stats only)", "");
  cli.opt("plant-guide", "guide+PAM to plant (e.g. GGCC...GCNGG)", "");
  cli.opt("plant-count", "number of sites to plant", "10");
  cli.opt("plant-mm", "mismatches per planted site", "0");
  cli.opt("pattern", "PAM pattern used to protect planted PAMs",
          "NNNNNNNNNNNNNNNNNNNNNRG");
  if (!cli.parse(argc, argv)) return 1;
  util::set_log_level(util::log_level::info);

  const auto scale = cli.get_u64("scale");
  const auto seed = cli.get_u64("seed");
  auto params = cli.get("assembly") == "hg38"
                    ? genome::hg38_like(scale, seed ? seed : 38)
                    : genome::hg19_like(scale, seed ? seed : 19);

  util::stopwatch sw;
  auto g = genome::generate(params);
  std::printf("generated %s: %zu chromosomes, %s total, %s searchable (%.2fs)\n",
              g.assembly.c_str(), g.chroms.size(),
              util::human_bytes(g.total_bases()).c_str(),
              util::human_bytes(g.non_n_bases()).c_str(), sw.seconds());
  for (size_t i = 0; i < std::min<size_t>(5, g.chroms.size()); ++i) {
    std::printf("  %-8s %12zu bp\n", g.chroms[i].name.c_str(),
                g.chroms[i].seq.size());
  }
  if (g.chroms.size() > 5) std::printf("  ... and %zu more\n", g.chroms.size() - 5);

  const std::string guide = cli.get("plant-guide");
  if (!guide.empty()) {
    const auto sites = genome::plant_sites(
        g, cof::normalize_sequence(guide), cof::normalize_sequence(cli.get("pattern")),
        cli.get_u64("plant-count"), static_cast<unsigned>(cli.get_u64("plant-mm")),
        seed + 1);
    std::printf("planted %zu sites with %llu mismatches:\n", sites.size(),
                static_cast<unsigned long long>(cli.get_u64("plant-mm")));
    for (const auto& s : sites) {
      std::printf("  %-8s %10zu %c %s\n", g.chroms[s.chrom_index].name.c_str(),
                  s.position, s.strand, s.written.c_str());
    }
  }

  // 2-bit footprint comparison (the upstream memory optimisation).
  util::usize packed = 0;
  for (const auto& c : g.chroms) packed += genome::twobit_seq::encode(c.seq).packed_bytes();
  std::printf("2-bit packed footprint: %s (%.1fx smaller than char)\n",
              util::human_bytes(packed).c_str(),
              static_cast<double>(g.total_bases()) / static_cast<double>(packed));

  const std::string out = cli.get("out");
  if (!out.empty()) {
    sw.reset();
    if (genome::is_twobit_path(out)) {
      genome::write_twobit_file(out, g);
    } else {
      genome::write_fasta_file(out, g.chroms);
    }
    std::printf("wrote %s (%.2fs)\n", out.c_str(), sw.seconds());
  }
  return 0;
}
