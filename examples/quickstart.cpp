// Quickstart: search a synthetic genome for off-target sites of one guide.
//
//   $ ./examples/quickstart
//
// Demonstrates the three-call public API: parse an input, load a genome,
// run the search — here with the SYCL host program on the simulated
// accelerator, checked against the serial reference.
#include <cstdio>

#include "core/engine.hpp"
#include "genome/synth.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

int main() {
  util::set_log_level(util::log_level::warn);

  // 1. Describe the search: genome, PAM pattern, guides (Cas-OFFinder's
  //    input format; "synth:hg19:8192" = 1/8192-scale synthetic hg19).
  const cof::search_config cfg = cof::parse_input(
      "synth:hg19:8192\n"
      "NNNNNNNNNNNNNNNNNNNNNRG\n"
      "GGCCGACCTGTCGCTGACGCNNN 4\n"
      "CGCCAGCGTCAGCGACAGGTNNN 4\n");

  // 2. Load the genome (here: generate it) and plant a couple of known
  //    off-target sites so the demo has guaranteed hits.
  genome::genome_t g = cof::load_configured_genome(cfg);
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 3, 2, /*seed=*/1234);
  std::printf("genome: %s, %zu chromosomes, %s\n", g.assembly.c_str(),
              g.chroms.size(), util::human_bytes(g.total_bases()).c_str());

  // 3. Run the search on the device pipeline of your choice.
  cof::engine_options opt;
  opt.backend = cof::backend_kind::sycl;  // or ::opencl / ::serial
  const auto result = cof::run_search(cfg, g, opt);

  std::printf("found %zu off-target sites in %.3f s (%zu chunks, %llu PAM hits)\n\n",
              result.records.size(), result.metrics.elapsed_seconds,
              result.metrics.chunks,
              static_cast<unsigned long long>(result.metrics.pipeline.total_loci));

  std::vector<std::string> qseqs;
  for (const auto& q : cfg.queries) qseqs.push_back(q.seq);
  std::printf("%s", cof::format_records(result.records, qseqs, g).c_str());

  // Cross-check against the serial reference implementation.
  const auto serial = cof::run_search(cfg, g, {.backend = cof::backend_kind::serial});
  COF_CHECK_MSG(serial.records == result.records,
                "device pipeline disagrees with the serial reference");
  std::printf("\nverified against the serial reference: %zu records identical\n",
              serial.records.size());
  return 0;
}
