// Fault-injection suite: the registry's spec/mode semantics, and one
// deterministic failure-path check per registered site wired through the
// streaming engine — every injected fault must end in either full recovery
// (byte-identical records vs an un-faulted run) or a clean site-named
// error; never a hang, a crash, or silent truncation. Failed runs must not
// leave spill files behind.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <cstdlib>
#include <filesystem>

#include "core/engine_stream.hpp"
#include "core/index.hpp"
#include "core/pipeline.hpp"
#include "fault/fault.hpp"
#include "serve/server.hpp"
#include "genome/chunker.hpp"
#include "genome/synth.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

struct temp_dir {
  fs::path path;
  temp_dir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cof_fault_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~temp_dir() { fs::remove_all(path); }
};

genome::genome_t fault_genome(util::u64 seed) {
  genome::synth_params p;
  p.assembly = "fault-test";
  p.chromosomes = {{"chrA", 40000}, {"chrB", 15000}};
  p.seed = seed;
  return genome::generate(p);
}

struct stream_case {
  cof::search_config cfg;
  std::string file;
};

/// Synth genome with `planted` real off-target sites written to a FASTA
/// file — so every streaming run in this suite has records to compare.
stream_case make_case(const temp_dir& dir, util::u64 seed, util::usize planted) {
  stream_case c;
  auto g = fault_genome(seed);
  c.cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = c.cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, c.cfg.pattern, planted, 2, seed + 1);
  c.file = (dir.path / "g.fa").string();
  genome::write_fasta_file(c.file, g.chroms);
  return c;
}

/// Spill files live in the system temp dir as cof_spill_<pid>_...; a failed
/// run must remove every one it created.
util::usize spill_files_for_this_pid() {
  const std::string prefix = "cof_spill_" + std::to_string(::getpid()) + "_";
  util::usize n = 0;
  for (const auto& e : fs::directory_iterator(fs::temp_directory_path())) {
    if (e.path().filename().string().rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

// --- registry semantics ------------------------------------------------------

TEST(FaultRegistry, HitModeFiresOnExactlyTheNthHit) {
  fault::reset();
  fault::configure("dev.launch=hit:2");
  EXPECT_TRUE(fault::armed());
  EXPECT_FALSE(fault::should_fail(fault::site::dev_launch));
  EXPECT_TRUE(fault::should_fail(fault::site::dev_launch));
  EXPECT_FALSE(fault::should_fail(fault::site::dev_launch));
  const auto st = fault::stats(fault::site::dev_launch);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.injected, 1u);
  fault::reset();
  EXPECT_FALSE(fault::armed());
}

TEST(FaultRegistry, AlwaysAndOffModes) {
  fault::reset();
  fault::configure("pipe.event=always");
  EXPECT_TRUE(fault::should_fail(fault::site::pipe_event));
  EXPECT_TRUE(fault::should_fail(fault::site::pipe_event));
  // Other sites stay dark, and unarmed probes cost nothing.
  EXPECT_FALSE(fault::should_fail(fault::site::dev_alloc));
  fault::configure("pipe.event=off");
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::should_fail(fault::site::pipe_event));
  fault::reset();
}

TEST(FaultRegistry, ProbModeIsDeterministicPerSeed) {
  auto draw = [](const char* spec) {
    fault::reset();
    fault::configure(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(fault::should_fail(fault::site::spill_write));
    }
    fault::reset();
    return fired;
  };
  const auto a = draw("spill.write=prob:0.5:42");
  const auto b = draw("spill.write=prob:0.5:42");
  const auto c = draw("spill.write=prob:0.5:43");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // P=0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultRegistry, InjectPointThrowsSiteNamedError) {
  fault::reset();
  fault::configure("spill.merge=always");
  try {
    fault::inject_point(fault::site::spill_merge);
    FAIL() << "expected injected_error";
  } catch (const fault::injected_error& e) {
    EXPECT_EQ(e.site(), "spill.merge");
    EXPECT_NE(std::string(e.what()).find("spill.merge"), std::string::npos);
  }
  fault::reset();
}

TEST(FaultRegistry, ScopeAppliesEnvThenSpecsAndDisarmsOnExit) {
  ::setenv("COF_FAULT", "dev.alloc=always", 1);
  {
    fault::scope guard("dev.alloc=off,queue.pop=hit:1");
    // The explicit spec overrides the environment for dev.alloc.
    EXPECT_FALSE(fault::should_fail(fault::site::dev_alloc));
    EXPECT_TRUE(fault::should_fail(fault::site::queue_pop));
  }
  ::unsetenv("COF_FAULT");
  EXPECT_FALSE(fault::armed());
  // Counters survive scope exit for post-run assertions.
  EXPECT_EQ(fault::stats(fault::site::queue_pop).injected, 1u);
  fault::reset();
}

/// An `@N` qualifier restricts a spec to threads bound to shard ordinal N
/// (xpu::scoped_device publishes the binding). Unbound threads and other
/// ordinals never fire it; the qualified entry keeps its own counters.
TEST(FaultRegistry, ShardQualifierFiresOnlyOnTheMatchingOrdinal) {
  fault::reset();
  fault::configure("dev.launch@1=always");
  EXPECT_TRUE(fault::armed());
  // Unbound thread (ordinal -1): the qualified spec stays dark.
  EXPECT_FALSE(fault::should_fail(fault::site::dev_launch));
  fault::set_thread_shard(0);
  EXPECT_FALSE(fault::should_fail(fault::site::dev_launch));
  fault::set_thread_shard(1);
  EXPECT_TRUE(fault::should_fail(fault::site::dev_launch));
  EXPECT_TRUE(fault::should_fail(fault::site::dev_launch));
  fault::set_thread_shard(-1);
  EXPECT_FALSE(fault::should_fail(fault::site::dev_launch));
  EXPECT_EQ(fault::stats("dev.launch@1").injected, 2u);
  // An unqualified spec composes: it fires on every thread regardless of
  // the binding.
  fault::configure("dev.launch=always");
  EXPECT_TRUE(fault::should_fail(fault::site::dev_launch));
  fault::reset();
}

TEST(FaultRegistryDeath, UnknownSiteAndBadModeDie) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(fault::configure("bogus.site=always"), "unknown fault site");
  EXPECT_DEATH(fault::configure("dev.alloc=sometimes"), "unknown fault mode");
  EXPECT_DEATH(fault::configure("dev.alloc"), "site=mode");
  EXPECT_DEATH(fault::configure("dev.alloc=hit:0"), "hit:N");
  EXPECT_DEATH(fault::configure("dev.alloc=prob:1.5"), "prob:P");
  EXPECT_DEATH(fault::configure("dev.alloc@x=always"), "shard ordinal");
  EXPECT_DEATH(fault::configure("dev.alloc@=always"), "shard ordinal");
}

// --- per-site streaming matrix -----------------------------------------------

struct site_case {
  const char* site;
  bool recovers;  // true: records must match the clean run; false: clean
                  // site-attributable error (and no leftover spill files)
};

class FaultSites : public ::testing::TestWithParam<site_case> {};

/// One injected fault per registered site, at the first hit: the recoverable
/// sites must produce byte-identical records to an un-faulted run; the rest
/// must surface a clean error naming the site — and never leave partial
/// spill output behind.
TEST_P(FaultSites, SingleFaultRecoversOrFailsClean) {
  const auto& tc = GetParam();
  temp_dir dir;
  const auto c = make_case(dir, 101, 6);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto clean = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(clean.records.empty());

  // The index sites only fire on the index/query split: route the faulted
  // run through it (index.persist lands on the cold build-and-persist path;
  // index.load needs a cache built by a clean warm run first).
  if (std::string_view(tc.site).rfind("index.", 0) == 0) {
    opt.index_path = (dir.path / "g.cofidx").string();
    if (std::string_view(tc.site) == "index.load") {
      const auto warm = cof::run_search_streaming(c.cfg, c.file, opt);
      EXPECT_EQ(warm.records, clean.records) << tc.site;
    }
  }

  opt.faults = std::string(tc.site) + "=hit:1";
  const util::usize spills_before = spill_files_for_this_pid();
  if (tc.recovers) {
    const auto faulted = cof::run_search_streaming(c.cfg, c.file, opt);
    EXPECT_EQ(faulted.records, clean.records) << tc.site;
    EXPECT_GE(fault::stats(tc.site).injected, 1u) << tc.site;
  } else {
    try {
      (void)cof::run_search_streaming(c.cfg, c.file, opt);
      FAIL() << tc.site << ": expected a clean failure";
    } catch (const fault::injected_error& e) {
      EXPECT_EQ(e.site(), tc.site);
    }
  }
  // Recovery or failure, the run's spill files are gone.
  EXPECT_EQ(spill_files_for_this_pid(), spills_before) << tc.site;
}

INSTANTIATE_TEST_SUITE_P(
    Sites, FaultSites,
    ::testing::Values(site_case{"dev.alloc", true},
                      site_case{"dev.launch", true},
                      site_case{"pipe.event", true},
                      site_case{"queue.push", false},
                      site_case{"queue.pop", false},
                      site_case{"spill.write", true},
                      site_case{"spill.merge", false},
                      site_case{"entry.clamp", true},
                      // Mid-kernel executor fault: surfaces after the group
                      // join as injected_error, so the device-phase retry
                      // rebuilds the pipeline and re-runs the chunk.
                      site_case{"exec.kernel", true},
                      // Mid-parse decoder fault: the producer owns the FASTA
                      // stream; a parse fault cannot be replayed (the stream
                      // position is gone), so it must fail clean.
                      site_case{"fasta.parse", false},
                      // Index cache I/O: a failed persist or load has no
                      // retry loop (the caller rebuilds or falls back to a
                      // cold run), so both must fail clean.
                      site_case{"index.persist", false},
                      site_case{"index.load", false}),
    [](const ::testing::TestParamInfo<site_case>& info) {
      std::string name = info.param.site;
      for (auto& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

/// A failed parse must leave the process reusable: the same config re-run
/// without the fault produces the full record set, and the registry's
/// counters record exactly one injection.
TEST(FaultSites, FastaParseFailureThenCleanRerunSucceeds) {
  temp_dir dir;
  const auto c = make_case(dir, 108, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto clean = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(clean.records.empty());

  opt.faults = "fasta.parse=hit:3";  // land mid-parse, not on the first line
  try {
    (void)cof::run_search_streaming(c.cfg, c.file, opt);
    FAIL() << "expected injected_error";
  } catch (const fault::injected_error& e) {
    EXPECT_EQ(e.site(), std::string("fasta.parse"));
  }
  EXPECT_EQ(fault::stats("fasta.parse").injected, 1u);
  EXPECT_GE(fault::stats("fasta.parse").hits, 3u);
  EXPECT_EQ(spill_files_for_this_pid(), 0u);

  opt.faults.clear();
  const auto rerun = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(rerun.records, clean.records);
}

/// Mid-kernel faults must recover on the opt6 SWAR path too — both kernel
/// argument blocks flow through the same executor fault site.
TEST(FaultSites, ExecKernelRecoversOnSwarVariant) {
  temp_dir dir;
  const auto c = make_case(dir, 109, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .variant = cof::comparer_variant::opt6,
                          .max_chunk = 9000};
  const auto clean = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(clean.records.empty());

  opt.faults = "exec.kernel=hit:5";
  const auto faulted = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(faulted.records, clean.records);
  EXPECT_EQ(fault::stats("exec.kernel").injected, 1u);
}

/// Inject at a mid-run hit and at the LAST hit (learned by counting hits
/// with a never-firing plan first), for a recoverable site: recovery must
/// hold wherever the fault lands, not just on the first operation.
TEST(FaultSites, MidAndLastHitStillRecover) {
  temp_dir dir;
  const auto c = make_case(dir, 102, 6);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  // Count the site's hits without firing (hit:N far past any real count).
  opt.faults = "dev.launch=hit:1000000000";
  const auto clean = cof::run_search_streaming(c.cfg, c.file, opt);
  const util::u64 total = fault::stats("dev.launch").hits;
  ASSERT_GE(total, 3u);

  for (const util::u64 n : {total / 2, total}) {
    opt.faults = "dev.launch=hit:" + std::to_string(n);
    const auto faulted = cof::run_search_streaming(c.cfg, c.file, opt);
    EXPECT_EQ(faulted.records, clean.records) << "hit:" << n;
    EXPECT_EQ(fault::stats("dev.launch").injected, 1u) << "hit:" << n;
  }
}

/// The index cache sites inject once per chunk plus once for the header, so
/// hit-1/mid/last land at the start, middle and end of the .cofidx
/// write/read. Every landing must end in a clean site-named error — and a
/// failed persist must not leave a cache file behind for later runs to
/// trust.
TEST(FaultSites, IndexPersistAndLoadFailCleanAtEveryHit) {
  temp_dir dir;
  const auto c = make_case(dir, 110, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  opt.index_path = (dir.path / "g.cofidx").string();

  // Learn each site's hit count with a never-firing plan: one cold run
  // (build + persist) and one warm run (load).
  opt.faults = "index.persist=hit:1000000000";
  const auto cold = cof::run_search_streaming(c.cfg, c.file, opt);
  const util::u64 persist_hits = fault::stats("index.persist").hits;
  opt.faults = "index.load=hit:1000000000";
  const auto warm = cof::run_search_streaming(c.cfg, c.file, opt);
  const util::u64 load_hits = fault::stats("index.load").hits;
  EXPECT_EQ(warm.records, cold.records);
  ASSERT_GE(persist_hits, 3u);
  ASSERT_GE(load_hits, 3u);

  for (const util::u64 n : {util::u64{1}, persist_hits / 2, persist_hits}) {
    fs::remove(opt.index_path);  // force the cold build-and-persist path
    opt.faults = "index.persist=hit:" + std::to_string(n);
    try {
      (void)cof::run_search_streaming(c.cfg, c.file, opt);
      FAIL() << "index.persist hit:" << n << ": expected a clean failure";
    } catch (const fault::injected_error& e) {
      EXPECT_EQ(e.site(), std::string("index.persist")) << "hit:" << n;
    }
    EXPECT_FALSE(fs::exists(opt.index_path)) << "hit:" << n;
  }

  opt.faults.clear();
  (void)cof::run_search_streaming(c.cfg, c.file, opt);  // rebuild the cache
  for (const util::u64 n : {util::u64{1}, load_hits / 2, load_hits}) {
    opt.faults = "index.load=hit:" + std::to_string(n);
    try {
      (void)cof::run_search_streaming(c.cfg, c.file, opt);
      FAIL() << "index.load hit:" << n << ": expected a clean failure";
    } catch (const fault::injected_error& e) {
      EXPECT_EQ(e.site(), std::string("index.load")) << "hit:" << n;
    }
  }
  EXPECT_EQ(spill_files_for_this_pid(), 0u);
}

/// A fault plan that exhausts the bounded retries must end in a clean,
/// site-attributable error — not a livelock. `always` keeps firing through
/// every retry.
TEST(FaultSites, ExhaustedRetriesFailCleanNotForever) {
  temp_dir dir;
  const auto c = make_case(dir, 103, 4);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};

  opt.faults = "dev.alloc=always";
  EXPECT_THROW((void)cof::run_search_streaming(c.cfg, c.file, opt),
               fault::injected_error);
  EXPECT_EQ(spill_files_for_this_pid(), 0u);

  // entry.clamp=always forces the overflow path on every attempt; the
  // attempt bound turns it into the historical overflow error.
  opt.faults = "entry.clamp=always";
  EXPECT_THROW((void)cof::run_search_streaming(c.cfg, c.file, opt),
               cof::entry_overflow_error);
  EXPECT_EQ(spill_files_for_this_pid(), 0u);
}

/// Identical fault plans must produce identical outcomes (the registry's
/// determinism carried through the whole engine). prob mode may or may not
/// exhaust the bounded spill retries — but two runs with the same seed must
/// agree on which.
TEST(FaultSites, DeterministicAcrossRuns) {
  temp_dir dir;
  const auto c = make_case(dir, 104, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 7000};
  opt.faults = "spill.write=prob:0.4:7";

  struct outcome {
    bool threw = false;
    std::string error;
    std::vector<cof::ot_record> records;
    util::u64 spill_retries = 0;
    bool operator==(const outcome&) const = default;
  };
  auto run = [&] {
    outcome o;
    try {
      auto r = cof::run_search_streaming(c.cfg, c.file, opt);
      o.records = std::move(r.records);
      o.spill_retries = r.metrics.recovery.spill_retries;
    } catch (const std::exception& e) {
      o.threw = true;
      o.error = e.what();
    }
    return o;
  };
  const outcome a = run();
  const outcome b = run();
  EXPECT_TRUE(a == b) << "prob-mode fault plan not reproducible";
}

// --- shard-degradation sites -------------------------------------------------
//
// Multi-device runs add per-device fault targeting (`site@N` kills only the
// consumers bound to shard ordinal N) and one new site of their own:
// shard.assign, the producer/reassignment chunk-to-device decision. The
// contract mirrors the single-device matrix — a partial failure degrades to
// the survivors byte-identically, a total failure surfaces the injected
// site cleanly with no spill leftovers.

struct shard_fault_case {
  const char* site;  // per-device site to kill ordinal 1 with (@1=always)
};

class ShardFaults : public ::testing::TestWithParam<shard_fault_case> {};

/// Killing exactly one device of a two-device set (site@1=always: every
/// alloc/launch on ordinal 1 fails, forever) must degrade the run to the
/// survivor with byte-identical records, mark the dead shard in the
/// outcome, and leave no spill files behind.
TEST_P(ShardFaults, OneDeviceDyingDegradesToSurvivorsByteIdentically) {
  const std::string site = GetParam().site;
  temp_dir dir;
  const auto c = make_case(dir, 114, 6);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  opt.num_devices = 2;
  const auto clean = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(clean.records.empty());
  ASSERT_EQ(clean.device_shards.size(), 2u);
  EXPECT_FALSE(clean.device_shards[0].failed);
  EXPECT_FALSE(clean.device_shards[1].failed);

  const util::usize spills_before = spill_files_for_this_pid();
  opt.faults = site + "@1=always";
  const auto degraded = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(degraded.records, clean.records) << site;
  ASSERT_EQ(degraded.device_shards.size(), 2u);
  EXPECT_FALSE(degraded.device_shards[0].failed) << site;
  EXPECT_TRUE(degraded.device_shards[1].failed) << site;
  // The survivor did real work, and the per-shard counters still account
  // for every take (a chunk the dead device took before dying is counted
  // there AND on the survivor that re-ran it after reassignment).
  EXPECT_GE(degraded.device_shards[0].chunks, 1u) << site;
  util::u64 taken = 0;
  for (const auto& ds : degraded.device_shards) taken += ds.chunks;
  EXPECT_EQ(taken, degraded.metrics.chunks) << site;
  EXPECT_GE(fault::stats(site + "@1").injected, 1u) << site;
  EXPECT_EQ(spill_files_for_this_pid(), spills_before) << site;
}

INSTANTIATE_TEST_SUITE_P(PerDeviceSites, ShardFaults,
                         ::testing::Values(shard_fault_case{"dev.alloc"},
                                           shard_fault_case{"dev.launch"}),
                         [](const ::testing::TestParamInfo<shard_fault_case>&
                                info) {
                           std::string name = info.param.site;
                           for (auto& ch : name) {
                             if (ch == '.') ch = '_';
                           }
                           return name;
                         });

/// A launch fault that keeps firing past the bounded retries on a device
/// mid-run (not dead on arrival) must hand the in-flight chunk to the
/// survivor — the reassignment counter proves the degradation path ran,
/// and the records still match.
TEST(ShardFaults, MidRunLaunchDeathReassignsPendingWork) {
  temp_dir dir;
  const auto c = make_case(dir, 115, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  opt.num_devices = 2;
  const auto clean = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(clean.records.empty());

  // dev.launch only fires at kernel launch, so device 1 builds its
  // pipeline fine, takes work, burns the bounded retries (each rebuild
  // succeeds — dev.alloc is not armed), then degrades: the full
  // retry-then-degrade arc, not dead-on-arrival.
  opt.faults = "dev.launch@1=always";
  const auto degraded = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(degraded.records, clean.records);
  EXPECT_TRUE(degraded.device_shards[1].failed);
  if (degraded.device_shards[1].chunks != 0) {
    // Device 1 took work before dying: that work must have been reassigned.
    EXPECT_GE(degraded.shard_reassigns, 1u);
  }
}

/// When every device of the set dies the run must fail with the injected
/// site's clean error — not a hang, not a shard.assign artifact — and the
/// unwound spill writers must leave nothing in the temp dir.
TEST(ShardFaults, EveryDeviceDeadFailsCleanWithNoSpillLeftovers) {
  temp_dir dir;
  const auto c = make_case(dir, 116, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  opt.num_devices = 2;
  opt.faults = "dev.launch=always";  // unqualified: every device, every hit
  const util::usize spills_before = spill_files_for_this_pid();
  try {
    (void)cof::run_search_streaming(c.cfg, c.file, opt);
    FAIL() << "expected a clean failure once no device survives";
  } catch (const fault::injected_error& e) {
    EXPECT_EQ(e.site(), std::string("dev.launch"));
  }
  EXPECT_EQ(spill_files_for_this_pid(), spills_before);
}

/// shard.assign faults the chunk-to-device decision itself (producer side):
/// there is no retry around it, so the run fails cleanly naming the site,
/// on the very first assignment.
TEST(ShardFaults, AssignFaultFailsCleanNamingTheSite) {
  temp_dir dir;
  const auto c = make_case(dir, 117, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  opt.num_devices = 2;
  opt.faults = "shard.assign=hit:1";
  const util::usize spills_before = spill_files_for_this_pid();
  try {
    (void)cof::run_search_streaming(c.cfg, c.file, opt);
    FAIL() << "expected injected_error at shard.assign";
  } catch (const fault::injected_error& e) {
    EXPECT_EQ(e.site(), std::string("shard.assign"));
  }
  EXPECT_EQ(fault::stats("shard.assign").injected, 1u);
  EXPECT_EQ(spill_files_for_this_pid(), spills_before);
  // shard.assign only exists on the sharded path: a single-device run never
  // evaluates it, so the same plan runs clean.
  opt.num_devices = 1;
  const auto single = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(single.records.empty());
  EXPECT_EQ(fault::stats("shard.assign").injected, 0u);
}

/// The warm path degrades too: an index-backed query session with a device
/// dying mid-query migrates its slots to the survivors and still returns
/// byte-identical records (bounded per-device attempts, then migration).
TEST(ShardFaults, IndexSessionMigratesOffADeadDevice) {
  temp_dir dir;
  const auto c = make_case(dir, 118, 6);
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);

  opt.num_devices = 2;
  cof::index_query_session clean_s(idx, opt);
  const auto clean = clean_s.query(c.cfg.queries);
  ASSERT_FALSE(clean.records.empty());
  EXPECT_EQ(clean_s.failed_devices(), 0u);

  fault::scope guard("dev.launch@1=always");
  cof::index_query_session faulted_s(idx, opt);
  const auto degraded = faulted_s.query(c.cfg.queries);
  EXPECT_EQ(degraded.records, clean.records);
  EXPECT_EQ(faulted_s.failed_devices(), 1u);
  EXPECT_GE(faulted_s.device_migrations(), 1u);
  // The survivor owns every resident chunk now.
  for (const auto& d : faulted_s.device_residency()) {
    if (!d.alive) EXPECT_EQ(d.resident_bytes, 0u);
  }
}

// --- serving-mode sites ------------------------------------------------------
//
// serve.admit / serve.batch never fire in a streaming run (they live in the
// serve::server admission layer), so they get their own matrix here instead
// of joining the streaming Values above — same hit-1/mid/last idiom, with
// the hit counts learned via a never-firing plan first.

cof::genome_index serve_index(const stream_case& c) {
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  return cof::build_index(g, c.cfg.pattern, opt);
}

/// An armed serve.admit plan rejects exactly the Nth submit() with a clean
/// site-named error; every other request is admitted and served untouched.
TEST(ServeFaults, AdmitFaultRejectsExactlyTheNthSubmit) {
  temp_dir dir;
  const auto c = make_case(dir, 111, 6);
  const auto idx = serve_index(c);
  const std::string guide = c.cfg.queries[0].seq;

  cof::serve::server_options sopt;
  sopt.engine = {.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  cof::serve::server srv(idx, sopt);
  const auto clean = srv.submit(guide, 2).get().records;
  ASSERT_FALSE(clean.empty());

  fault::scope guard("serve.admit=hit:2");
  auto first = srv.submit(guide, 2);
  try {
    (void)srv.submit(guide, 2);
    FAIL() << "expected injected_error on the second admit";
  } catch (const fault::injected_error& e) {
    EXPECT_EQ(e.site(), std::string("serve.admit"));
  }
  auto third = srv.submit(guide, 2);
  EXPECT_EQ(first.get().records, clean);
  EXPECT_EQ(third.get().records, clean);
  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.served, 3u);
}

/// serve.batch faults at hit 1, mid and last: the bounded batch re-dispatch
/// must recover every landing with byte-identical records — the request
/// stream keeps flowing wherever the fault lands.
TEST(ServeFaults, BatchFaultAtFirstMidAndLastHitRecovers) {
  temp_dir dir;
  const auto c = make_case(dir, 112, 6);
  const auto idx = serve_index(c);
  const std::string guide = c.cfg.queries[0].seq;
  cof::serve::server_options sopt;
  sopt.engine = {.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  constexpr util::usize kRequests = 5;

  // Learn the hit count with a never-firing plan: sequential submit+wait
  // makes one batch (one serve.batch hit) per request.
  std::vector<cof::ot_record> clean;
  util::u64 total = 0;
  {
    fault::scope guard("serve.batch=hit:1000000000");
    cof::serve::server srv(idx, sopt);
    for (util::usize i = 0; i < kRequests; ++i) {
      clean = srv.submit(guide, 2).get().records;
    }
    srv.shutdown();
    total = fault::stats("serve.batch").hits;
  }
  ASSERT_FALSE(clean.empty());
  ASSERT_GE(total, 3u);

  for (const util::u64 n : {util::u64{1}, total / 2, total}) {
    fault::scope guard("serve.batch=hit:" + std::to_string(n));
    cof::serve::server srv(idx, sopt);
    for (util::usize i = 0; i < kRequests; ++i) {
      EXPECT_EQ(srv.submit(guide, 2).get().records, clean) << "hit:" << n;
    }
    srv.shutdown();
    EXPECT_EQ(fault::stats("serve.batch").injected, 1u) << "hit:" << n;
    EXPECT_GE(srv.stats().batch_retries, 1u) << "hit:" << n;
    EXPECT_EQ(srv.stats().failed, 0u) << "hit:" << n;
  }
}

/// serve.batch=always exhausts the bounded re-dispatch attempts: the batch's
/// futures carry the site-named error (no hang, no livelock), and the server
/// keeps serving once the plan is lifted — then shuts down cleanly.
TEST(ServeFaults, ExhaustedBatchRetriesFailTheBatchNotTheServer) {
  temp_dir dir;
  const auto c = make_case(dir, 113, 6);
  const auto idx = serve_index(c);
  const std::string guide = c.cfg.queries[0].seq;
  cof::serve::server_options sopt;
  sopt.engine = {.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  cof::serve::server srv(idx, sopt);
  const auto clean = srv.submit(guide, 2).get().records;
  ASSERT_FALSE(clean.empty());

  {
    fault::scope guard("serve.batch=always");
    auto doomed = srv.submit(guide, 2);
    try {
      (void)doomed.get();
      FAIL() << "expected the batch failure to reach the future";
    } catch (const fault::injected_error& e) {
      EXPECT_EQ(e.site(), std::string("serve.batch"));
    }
  }
  // The plan is gone: the very next request is served normally.
  EXPECT_EQ(srv.submit(guide, 2).get().records, clean);
  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_GE(st.batch_retries, sopt.max_batch_attempts - 1);
  EXPECT_EQ(st.served, 2u);
}

// --- overflow recovery property test -----------------------------------------

/// Saturation property: a tiny max_entries must not change a single record
/// on any backend at any queue count — the engine retries with grown
/// capacity (and reports it) until the chunk fits.
TEST(OverflowRecovery, TinyCapMatchesUncappedOnEveryBackendAndQueueCount) {
  temp_dir dir;
  const auto c = make_case(dir, 105, 12);  // dense hits

  for (const auto backend :
       {cof::backend_kind::opencl, cof::backend_kind::sycl,
        cof::backend_kind::sycl_usm, cof::backend_kind::sycl_twobit}) {
    cof::engine_options opt{.backend = backend, .max_chunk = 9000};
    const auto uncapped = cof::run_search_streaming(c.cfg, c.file, opt);
    ASSERT_FALSE(uncapped.records.empty());
    for (const util::usize queues : {1u, 2u, 4u}) {
      opt.num_queues = queues;
      opt.max_entries = 3;
      const auto capped = cof::run_search_streaming(c.cfg, c.file, opt);
      EXPECT_EQ(capped.records, uncapped.records)
          << cof::backend_name(backend) << " queues=" << queues;
      EXPECT_GE(capped.metrics.recovery.overflow_retries, 1u)
          << cof::backend_name(backend) << " queues=" << queues;
      EXPECT_GE(capped.metrics.recovery.recovered_overflows, 1u)
          << cof::backend_name(backend) << " queues=" << queues;
    }
  }
}

/// When growing would exceed max_retry_entries, the engine splits the chunk
/// instead (bounded memory) — and the records still match.
TEST(OverflowRecovery, SplitsInsteadOfGrowingPastTheMemoryCap) {
  temp_dir dir;
  const auto c = make_case(dir, 106, 8);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto uncapped = cof::run_search_streaming(c.cfg, c.file, opt);
  opt.max_entries = 3;
  opt.max_retry_entries = 256;  // growth cap well below per-chunk demand
  const auto capped = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(capped.records, uncapped.records);
  EXPECT_GE(capped.metrics.recovery.chunk_splits, 1u);
  EXPECT_GE(capped.metrics.recovery.recovered_overflows, 1u);
}

// --- true-demand regression --------------------------------------------------

/// The kernels keep advancing the entry counter past the capacity (only the
/// stores are clamped), so the overflow error must report the TRUE demand —
/// exactly the hit count an uncapped run observes — not the clamped
/// capacity. The retry sizing consumes this number; a regression here would
/// silently degrade recovery to blind doubling.
class TrueDemand : public ::testing::TestWithParam<cof::backend_kind> {};

TEST_P(TrueDemand, OverflowErrorRoundTripsTheKernelCounter) {
  auto g = fault_genome(107);
  const auto pat = cof::make_pattern("NNNNNNNNNNNNNNNNNNNNNGG");
  const std::string_view seq(g.chroms[0].seq.data(), 9000);

  auto make = [&](util::usize max_entries) {
    cof::pipeline_options popt;
    popt.max_entries = max_entries;
    switch (GetParam()) {
      case cof::backend_kind::opencl: return cof::make_opencl_pipeline(popt);
      case cof::backend_kind::sycl_usm: return cof::make_sycl_usm_pipeline(popt);
      case cof::backend_kind::sycl_twobit:
        return cof::make_sycl_twobit_pipeline(popt);
      default: return cof::make_sycl_pipeline(popt);
    }
  };

  auto uncapped = make(0);
  uncapped->load_chunk(seq);
  const util::u32 hits = uncapped->run_finder(pat);
  ASSERT_GT(hits, 2u);

  auto capped = make(2);
  capped->load_chunk(seq);
  try {
    (void)capped->run_finder(pat);
    FAIL() << "expected entry_overflow_error";
  } catch (const cof::entry_overflow_error& e) {
    EXPECT_EQ(e.kernel(), "finder");
    EXPECT_EQ(e.required(), hits);  // true demand, not the clamped count
    EXPECT_EQ(e.capacity(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TrueDemand,
                         ::testing::Values(cof::backend_kind::opencl,
                                           cof::backend_kind::sycl,
                                           cof::backend_kind::sycl_usm,
                                           cof::backend_kind::sycl_twobit));

}  // namespace
