// Unit tests for simulated device memory and transfer metering.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <vector>

#include "xpu/device.hpp"
#include "xpu/mem.hpp"

namespace {

TEST(DeviceMem, RoundTrip) {
  xpu::device dev("mem1", 1);
  xpu::device_buffer buf(dev, 100);
  std::vector<char> src(100), dst(100);
  for (int i = 0; i < 100; ++i) src[i] = static_cast<char>(i);
  buf.write(0, src.data(), 100);
  buf.read(0, dst.data(), 100);
  EXPECT_EQ(src, dst);
}

TEST(DeviceMem, OffsetTransfers) {
  xpu::device dev("mem2", 1);
  xpu::device_buffer buf(dev, 64);
  const char payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  buf.write(16, payload, 8);
  char out[8] = {};
  buf.read(16, out, 8);
  EXPECT_EQ(0, memcmp(payload, out, 8));
}

TEST(DeviceMem, MetersBytesAndOps) {
  xpu::device dev("mem3", 1);
  xpu::device_buffer buf(dev, 1024);
  std::vector<char> tmp(256);
  buf.write(0, tmp.data(), 256);
  buf.write(256, tmp.data(), 128);
  buf.read(0, tmp.data(), 64);
  auto s = dev.memory();
  EXPECT_EQ(s.h2d_bytes, 384u);
  EXPECT_EQ(s.h2d_ops, 2u);
  EXPECT_EQ(s.d2h_bytes, 64u);
  EXPECT_EQ(s.d2h_ops, 1u);
}

TEST(DeviceMem, AllocationAccounting) {
  xpu::device dev("mem4", 1);
  {
    xpu::device_buffer a(dev, 1000);
    EXPECT_EQ(dev.memory().bytes_live, 1000u);
    {
      xpu::device_buffer b(dev, 500);
      EXPECT_EQ(dev.memory().bytes_live, 1500u);
      EXPECT_EQ(dev.memory().bytes_peak, 1500u);
    }
    EXPECT_EQ(dev.memory().bytes_live, 1000u);
    EXPECT_EQ(dev.memory().bytes_peak, 1500u);  // peak sticks
  }
  EXPECT_EQ(dev.memory().bytes_live, 0u);
  EXPECT_EQ(dev.memory().bytes_allocated, 1500u);
}

TEST(DeviceMem, MoveTransfersOwnership) {
  xpu::device dev("mem5", 1);
  xpu::device_buffer a(dev, 100);
  char v = 42;
  a.write(0, &v, 1);
  xpu::device_buffer b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  char out = 0;
  b.read(0, &out, 1);
  EXPECT_EQ(out, 42);
  EXPECT_EQ(dev.memory().bytes_live, 100u);  // one allocation accounted
  xpu::device_buffer c(dev, 50);
  c = std::move(b);
  EXPECT_EQ(dev.memory().bytes_live, 100u);  // c's old 50 freed
}

TEST(DeviceMem, ResetStatsKeepsLiveBytes) {
  xpu::device dev("mem6", 1);
  xpu::device_buffer a(dev, 64);
  std::vector<char> tmp(64);
  a.write(0, tmp.data(), 64);
  dev.reset_stats();
  auto s = dev.memory();
  EXPECT_EQ(s.h2d_bytes, 0u);
  EXPECT_EQ(s.bytes_live, 64u);
}

TEST(DeviceMemDeath, OutOfBoundsWrite) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        xpu::device dev("memd", 1);
        xpu::device_buffer buf(dev, 16);
        char x[32] = {};
        buf.write(0, x, 32);
      },
      "out of bounds");
}

TEST(DeviceMemDeath, OutOfBoundsReadAtOffset) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        xpu::device dev("memd2", 1);
        xpu::device_buffer buf(dev, 16);
        char x[8] = {};
        buf.read(12, x, 8);
      },
      "out of bounds");
}

TEST(DeviceMem, MeterHooksForFacadeCopies) {
  xpu::device dev("mem7", 1);
  dev.meter_h2d(123);
  dev.meter_d2h(45);
  EXPECT_EQ(dev.memory().h2d_bytes, 123u);
  EXPECT_EQ(dev.memory().d2h_bytes, 45u);
}

}  // namespace
