// Tests for the SYCL facade: ranges/ids, selectors, buffers and write-back
// semantics, accessors (ranged, constant, local), handler commands,
// nd_item queries, atomic_ref, events and exceptions.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "syclsim/sycl.hpp"

namespace {

TEST(SyclRange, SizesAndEquality) {
  sycl::range<1> a(5);
  EXPECT_EQ(a.size(), 5u);
  sycl::range<2> b(3, 4);
  EXPECT_EQ(b.size(), 12u);
  sycl::range<3> c(2, 3, 4);
  EXPECT_EQ(c.size(), 24u);
  EXPECT_TRUE(sycl::range<2>(3, 4) == b);
  EXPECT_FALSE(sycl::range<2>(4, 3) == b);
}

TEST(SyclId, ImplicitSizeConversion1D) {
  sycl::id<1> i(7);
  size_t s = i;
  EXPECT_EQ(s, 7u);
}

TEST(SyclNdRange, GroupRange) {
  sycl::nd_range<1> ndr(sycl::range<1>(256), sycl::range<1>(64));
  EXPECT_EQ(ndr.get_group_range()[0], 4u);
}

TEST(SyclSelector, GpuAndCpuSelectors) {
  EXPECT_TRUE(sycl::gpu_selector{}.select_device().is_gpu());
  EXPECT_TRUE(sycl::cpu_selector{}.select_device().is_cpu());
  EXPECT_TRUE(sycl::default_selector{}.select_device().is_gpu());
  // SYCL 2020 callable form
  sycl::queue q(sycl::gpu_selector_v);
  EXPECT_TRUE(q.get_device().is_gpu());
}

TEST(SyclDevice, InfoQueries) {
  sycl::device d;
  EXPECT_FALSE(d.get_info<sycl::info::device::name>().empty());
  EXPECT_GE(d.get_info<sycl::info::device::max_work_group_size>(), 256u);
}

TEST(SyclBuffer, WriteBackOnDestruction) {
  std::vector<int> host(16, 0);
  {
    sycl::queue q{sycl::gpu_selector{}};
    sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(16));
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      cgh.parallel_for(sycl::range<1>(16),
                       [=](sycl::item<1> it) { acc[it.get_id(0)] = 9; });
    });
    EXPECT_EQ(host[0], 0);  // not yet written back
  }
  for (int v : host) EXPECT_EQ(v, 9);
}

TEST(SyclBuffer, NoWriteBackWithoutDeviceWrite) {
  std::vector<int> host(8, 3);
  {
    sycl::queue q{sycl::gpu_selector{}};
    sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(8));
    std::vector<int> out(8);
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_read>(cgh);
      cgh.copy(acc, out.data());
    });
    // Mutate host copy; a read-only buffer must not clobber it on destroy.
    host[0] = 42;
  }
  EXPECT_EQ(host[0], 42);
}

TEST(SyclBuffer, ConstHostPointerNeverWritesBack) {
  std::vector<int> host(8, 5);
  {
    sycl::buffer<int, 1> buf(static_cast<const int*>(host.data()),
                             sycl::range<1>(8));
    sycl::queue q{sycl::gpu_selector{}};
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_read_write>(cgh);
      cgh.parallel_for(sycl::range<1>(8), [=](sycl::item<1> it) { acc[it[0]] = -1; });
    });
  }
  EXPECT_EQ(host[0], 5);
}

TEST(SyclBuffer, SetWriteBackFalseDisables) {
  std::vector<int> host(4, 1);
  {
    sycl::queue q{sycl::gpu_selector{}};
    sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(4));
    buf.set_write_back(false);
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      cgh.fill(acc, 7);
    });
  }
  EXPECT_EQ(host[0], 1);
}

TEST(SyclBuffer, SetFinalDataRedirects) {
  std::vector<int> host(4, 1), redirected(4, 0);
  {
    sycl::queue q{sycl::gpu_selector{}};
    sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(4));
    buf.set_final_data(redirected.data());
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      cgh.fill(acc, 7);
    });
  }
  EXPECT_EQ(host[0], 1);
  EXPECT_EQ(redirected[0], 7);
}

TEST(SyclAccessor, RangedAccessorOutOfBoundsThrows) {
  sycl::queue q{sycl::gpu_selector{}};
  sycl::buffer<int, 1> buf{sycl::range<1>(10)};
  EXPECT_THROW(q.submit([&](sycl::handler& cgh) {
    auto acc =
        buf.get_access<sycl::sycl_read>(cgh, sycl::range<1>(8), sycl::id<1>(5));
    (void)acc;
  }),
               sycl::exception);
}

TEST(SyclAccessor, RangedCopyMovesSubrange) {
  sycl::queue q{sycl::gpu_selector{}};
  std::vector<int> init(16);
  std::iota(init.begin(), init.end(), 0);
  sycl::buffer<int, 1> buf(init.data(), sycl::range<1>(16));
  buf.set_write_back(false);
  std::vector<int> out(4, -1);
  q.submit([&](sycl::handler& cgh) {
     auto acc =
         buf.get_access<sycl::sycl_read>(cgh, sycl::range<1>(4), sycl::id<1>(8));
     cgh.copy(acc, out.data());
   }).wait();
  EXPECT_EQ(out, (std::vector<int>{8, 9, 10, 11}));
}

TEST(SyclAccessor, HostToDeviceRangedCopy) {
  sycl::queue q{sycl::gpu_selector{}};
  sycl::buffer<int, 1> buf{sycl::range<1>(8)};
  std::vector<int> zero(8, 0), src{5, 6}, out(8);
  q.submit([&](sycl::handler& cgh) {
    auto acc = buf.get_access<sycl::sycl_write>(cgh);
    cgh.copy(zero.data(), acc);
  });
  q.submit([&](sycl::handler& cgh) {
    auto acc =
        buf.get_access<sycl::sycl_write>(cgh, sycl::range<1>(2), sycl::id<1>(3));
    cgh.copy(src.data(), acc);
  });
  q.submit([&](sycl::handler& cgh) {
    auto acc = buf.get_access<sycl::sycl_read>(cgh);
    cgh.copy(acc, out.data());
  });
  EXPECT_EQ(out, (std::vector<int>{0, 0, 0, 5, 6, 0, 0, 0}));
}

TEST(SyclAccessor, DeviceToDeviceCopyAndFill) {
  sycl::queue q{sycl::gpu_selector{}};
  sycl::buffer<int, 1> a{sycl::range<1>(4)}, b{sycl::range<1>(4)};
  std::vector<int> out(4);
  q.submit([&](sycl::handler& cgh) {
    auto acc = a.get_access<sycl::sycl_write>(cgh);
    cgh.fill(acc, 3);
  });
  q.submit([&](sycl::handler& cgh) {
    auto src = a.get_access<sycl::sycl_read>(cgh);
    auto dst = b.get_access<sycl::sycl_write>(cgh);
    cgh.copy(src, dst);
  });
  q.submit([&](sycl::handler& cgh) {
    auto acc = b.get_access<sycl::sycl_read>(cgh);
    cgh.copy(acc, out.data());
  });
  EXPECT_EQ(out, std::vector<int>(4, 3));
}

TEST(SyclKernel, NdRangeWithLocalAccessorAndBarrier) {
  sycl::queue q{sycl::gpu_selector{}};
  const size_t N = 256, WG = 32;
  std::vector<int> out(N, 0);
  {
    sycl::buffer<int, 1> buf(out.data(), sycl::range<1>(N));
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      sycl::local_accessor<int, 1> tile(sycl::range<1>(WG), cgh);
      cgh.parallel_for(sycl::nd_range<1>(sycl::range<1>(N), sycl::range<1>(WG)),
                       [=](sycl::nd_item<1> it) {
                         const size_t li = it.get_local_id(0);
                         tile[li] = static_cast<int>(it.get_global_id(0));
                         it.barrier(sycl::access::fence_space::local_space);
                         acc[it.get_global_id(0)] = tile[WG - 1 - li];
                       });
    });
  }
  for (size_t i = 0; i < N; ++i) {
    const size_t grp = i / WG, li = i % WG;
    EXPECT_EQ(out[i], static_cast<int>(grp * WG + (WG - 1 - li)));
  }
}

TEST(SyclKernel, MultipleLocalAccessorsGetDistinctStorage) {
  sycl::queue q{sycl::gpu_selector{}};
  const size_t WG = 16;
  int ok = 1;
  {
    sycl::buffer<int, 1> buf(&ok, sycl::range<1>(1));
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      sycl::local_accessor<char, 1> a(sycl::range<1>(WG), cgh);
      sycl::local_accessor<int, 1> b(sycl::range<1>(WG), cgh);
      cgh.parallel_for(sycl::nd_range<1>(sycl::range<1>(WG), sycl::range<1>(WG)),
                       [=](sycl::nd_item<1> it) {
                         const size_t li = it.get_local_id(0);
                         a[li] = static_cast<char>(li);
                         b[li] = 1000 + static_cast<int>(li);
                         it.barrier();
                         if (b[li] != 1000 + static_cast<int>(li) ||
                             a[li] != static_cast<char>(li)) {
                           acc[0] = 0;  // overlapped allocations
                         }
                       });
    });
  }
  EXPECT_EQ(ok, 1);
}

TEST(SyclKernel, BarrierFreeHintUsesFastPath) {
  sycl::queue q{sycl::gpu_selector{}};
  std::vector<int> out(128, 0);
  {
    sycl::buffer<int, 1> buf(out.data(), sycl::range<1>(128));
    q.submit([&](sycl::handler& cgh) {
      cgh.cof_hint_no_barrier();
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      cgh.parallel_for(sycl::nd_range<1>(sycl::range<1>(128), sycl::range<1>(32)),
                       [=](sycl::nd_item<1> it) {
                         acc[it.get_global_id(0)] = static_cast<int>(it.get_group(0));
                       });
    });
  }
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[127], 3);
}

TEST(SyclKernel, BadNdRangeThrows) {
  sycl::queue q{sycl::gpu_selector{}};
  EXPECT_THROW(q.submit([&](sycl::handler& cgh) {
    cgh.parallel_for(sycl::nd_range<1>(sycl::range<1>(100), sycl::range<1>(48)),
                     [=](sycl::nd_item<1>) {});
  }),
               sycl::exception);
}

TEST(SyclKernel, SingleTaskRunsOnce) {
  sycl::queue q{sycl::gpu_selector{}};
  int n = 0;
  {
    sycl::buffer<int, 1> buf(&n, sycl::range<1>(1));
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_read_write>(cgh);
      cgh.single_task([=] { acc[0] += 1; });
    });
  }
  EXPECT_EQ(n, 1);
}

TEST(SyclAtomicRef, FetchOps) {
  sycl::queue q{sycl::gpu_selector{}};
  struct vals_t {
    unsigned add = 0;
    int minv = 1000;
    int maxv = -1000;
  } vals;
  {
    sycl::buffer<vals_t, 1> buf(&vals, sycl::range<1>(1));
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_read_write>(cgh);
      cgh.parallel_for(sycl::nd_range<1>(sycl::range<1>(100), sycl::range<1>(10)),
                       [=](sycl::nd_item<1> it) {
                         const int v = static_cast<int>(it.get_global_id(0));
                         sycl::atomic_ref<unsigned> a(acc[0].add);
                         a.fetch_add(1u);
                         sycl::atomic_ref<int> mn(acc[0].minv);
                         mn.fetch_min(v);
                         sycl::atomic_ref<int> mx(acc[0].maxv);
                         mx.fetch_max(v);
                       });
    });
  }
  EXPECT_EQ(vals.add, 100u);
  EXPECT_EQ(vals.minv, 0);
  EXPECT_EQ(vals.maxv, 99);
}

TEST(SyclAtomicRef, ExchangeAndCas) {
  int x = 5;
  sycl::atomic_ref<int> a(x);
  EXPECT_EQ(a.exchange(9), 5);
  EXPECT_EQ(x, 9);
  int expected = 9;
  EXPECT_TRUE(a.compare_exchange_strong(expected, 11));
  EXPECT_EQ(x, 11);
  expected = 9;
  EXPECT_FALSE(a.compare_exchange_strong(expected, 13));
  EXPECT_EQ(expected, 11);
}

TEST(SyclEvent, ProfilingTimestampsOrdered) {
  sycl::queue q{sycl::gpu_selector{}};
  sycl::buffer<int, 1> buf{sycl::range<1>(1024)};
  auto ev = q.submit([&](sycl::handler& cgh) {
    auto acc = buf.get_access<sycl::sycl_write>(cgh);
    cgh.parallel_for(sycl::range<1>(1024), [=](sycl::item<1> it) {
      acc[it.get_id(0)] = static_cast<int>(it.get_linear_id());
    });
  });
  const auto submit =
      ev.get_profiling_info<sycl::info::event_profiling::command_submit>();
  const auto start =
      ev.get_profiling_info<sycl::info::event_profiling::command_start>();
  const auto end = ev.get_profiling_info<sycl::info::event_profiling::command_end>();
  EXPECT_LE(submit, start);
  EXPECT_LE(start, end);
}

TEST(SyclException, CarriesCode) {
  try {
    throw sycl::exception("boom", sycl::errc::nd_range);
  } catch (const sycl::exception& e) {
    EXPECT_STREQ(e.what(), "boom");
    EXPECT_EQ(e.code(), sycl::errc::nd_range);
  }
}

TEST(SyclKernel, TwoDimensionalNdRange) {
  sycl::queue q{sycl::gpu_selector{}};
  const size_t W = 8, H = 4;
  std::vector<int> out(W * H, -1);
  {
    sycl::buffer<int, 1> buf(out.data(), sycl::range<1>(W * H));
    q.submit([&](sycl::handler& cgh) {
      auto acc = buf.get_access<sycl::sycl_write>(cgh);
      cgh.parallel_for(sycl::nd_range<2>(sycl::range<2>(W, H), sycl::range<2>(4, 2)),
                       [=](sycl::nd_item<2> it) {
                         acc[it.get_global_id(1) * W + it.get_global_id(0)] =
                             static_cast<int>(it.get_global_id(0) +
                                              10 * it.get_global_id(1));
                       });
    });
  }
  for (size_t y = 0; y < H; ++y) {
    for (size_t x = 0; x < W; ++x) {
      EXPECT_EQ(out[y * W + x], static_cast<int>(x + 10 * y));
    }
  }
}

}  // namespace

// -- appended: host_accessor coverage ---------------------------------------

namespace {

TEST(SyclHostAccessor, ReadsDeviceData) {
  sycl::queue q{sycl::gpu_selector{}};
  std::vector<int> init{1, 2, 3, 4};
  sycl::buffer<int, 1> buf(init.data(), sycl::range<1>(4));
  buf.set_write_back(false);
  q.submit([&](sycl::handler& cgh) {
    auto acc = buf.get_access<sycl::sycl_read_write>(cgh);
    cgh.parallel_for(sycl::range<1>(4), [=](sycl::item<1> it) { acc[it[0]] *= 10; });
  });
  sycl::host_accessor<int, 1, sycl::access::mode::read> host(buf);
  ASSERT_EQ(host.size(), 4u);
  EXPECT_EQ(host[0], 10);
  EXPECT_EQ(host[3], 40);
}

TEST(SyclHostAccessor, WriteModeTriggersWriteBack) {
  std::vector<int> host(4, 0);
  {
    sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(4));
    sycl::host_accessor<int, 1, sycl::access::mode::write> acc(buf);
    for (size_t i = 0; i < acc.size(); ++i) acc[i] = static_cast<int>(i) + 7;
  }
  EXPECT_EQ(host, (std::vector<int>{7, 8, 9, 10}));
}

TEST(SyclHostAccessor, ReadModeDoesNotWriteBack) {
  std::vector<int> host(4, 5);
  {
    sycl::buffer<int, 1> buf(host.data(), sycl::range<1>(4));
    sycl::host_accessor<int, 1, sycl::access::mode::read> acc(buf);
    EXPECT_EQ(acc[0], 5);
    host[0] = 42;  // must survive destruction
  }
  EXPECT_EQ(host[0], 42);
}

TEST(SyclHostAccessor, RangeBasedIteration) {
  sycl::buffer<int, 1> buf{sycl::range<1>(8)};
  sycl::host_accessor<int> acc(buf);
  int v = 0;
  for (int& x : acc) x = v++;
  EXPECT_EQ(acc[7], 7);
}

}  // namespace
