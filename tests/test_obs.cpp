// Observability tests: trace-event JSON export (schema + per-thread span
// nesting), metrics registry (exact histogram bucket boundaries, reset
// semantics), per-run lifetime (back-to-back runs export independent data),
// concurrent recording from several threads (the `tsan` label re-runs this
// under COF_SANITIZE=thread), and end-to-end engine traces carrying the
// expected span names for every host facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_stream.hpp"
#include "genome/fasta.hpp"
#include "genome/synth.hpp"
#include "json_compat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace {

using namespace cof;
using testjson::events_named;
using testjson::jvalue;
using testjson::parse_json;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreExclusive) {
  obs::histogram_metric h({50, 100, 250});
  // Bucket i covers [bounds[i-1], bounds[i]): a sample exactly on a bound
  // lands in the bucket ABOVE it; >= last bound is the overflow bucket.
  EXPECT_EQ(h.bucket_of(0), 0u);
  EXPECT_EQ(h.bucket_of(49), 0u);
  EXPECT_EQ(h.bucket_of(50), 1u);
  EXPECT_EQ(h.bucket_of(99), 1u);
  EXPECT_EQ(h.bucket_of(100), 2u);
  EXPECT_EQ(h.bucket_of(249), 2u);
  EXPECT_EQ(h.bucket_of(250), 3u);  // overflow
  EXPECT_EQ(h.bucket_of(~util::u64{0}), 3u);
}

TEST(Histogram, CountsSumMinMax) {
  obs::histogram_metric h({10, 100});
  for (util::u64 s : {0u, 9u, 10u, 50u, 99u, 100u, 5000u}) h.observe(s);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 9 + 10 + 50 + 99 + 100 + 5000);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0, 9
  EXPECT_EQ(h.bucket_count(1), 3u);  // 10, 50, 99
  EXPECT_EQ(h.bucket_count(2), 2u);  // 100, 5000 (overflow)
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(Histogram, QuantileEmptyAndSingleSample) {
  obs::histogram_metric h({10, 100});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty: no data, report 0
  h.observe(42);
  // One sample: every quantile is that sample (clamped into [min, max]).
  EXPECT_EQ(h.quantile(0.0), 42.0);
  EXPECT_EQ(h.quantile(0.5), 42.0);
  EXPECT_EQ(h.quantile(0.99), 42.0);
  EXPECT_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, QuantileInterpolatesAndClampsToObservedRange) {
  obs::histogram_metric h({10, 100, 1000});
  for (util::u64 s = 0; s < 10; ++s) h.observe(s);  // uniform in bucket 0
  // Rank space over n-1: q=0 is the min, q=1 the max — and the linear
  // interpolation inside the [min, 10) bucket lands mid-bucket at p50.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(1.0), 9.0);  // clamped to the observed max, not 10
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
}

TEST(Histogram, QuantileExactBoundarySamplesRoundTrip) {
  obs::histogram_metric h({10, 100});
  h.observe(10);   // exactly on a bound -> bucket above it
  h.observe(100);  // exactly on the last bound -> overflow bucket
  EXPECT_EQ(h.quantile(0.0), 10.0);
  EXPECT_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileOverflowBucketBorrowsObservedMax) {
  obs::histogram_metric h({10});
  h.observe(5);
  h.observe(20);
  h.observe(30);
  // The overflow bucket has no upper bound; the estimate interpolates up
  // to the observed max instead of inventing one.
  EXPECT_EQ(h.quantile(1.0), 30.0);
  EXPECT_LE(h.quantile(0.75), 30.0);
  EXPECT_GE(h.quantile(0.75), 10.0);
}

TEST(SlidingHistogram, ObservationsExpireWithTheWindow) {
  // 4 epochs x 1000 ns: the injected-clock seam drives rotation without
  // wall-time sleeps.
  obs::sliding_histogram w({10, 100}, 4, 1000);
  w.observe(5, 0);
  w.observe(50, 1500);
  EXPECT_EQ(w.count(1500), 2u);
  EXPECT_EQ(w.sum(1500), 55u);
  // now = 4500 (epoch 4): the window covers epochs 1..4, so the epoch-0
  // sample fell out but the epoch-1 sample remains.
  EXPECT_EQ(w.count(4500), 1u);
  EXPECT_EQ(w.sum(4500), 50u);
  // Far future: everything expired; count/quantile drain to zero.
  EXPECT_EQ(w.count(50000), 0u);
  EXPECT_EQ(w.quantile(0.5, 50000), 0.0);
}

TEST(SlidingHistogram, EpochSlotsRotateAndMerge) {
  obs::sliding_histogram w({100}, 3, 1000);
  // One sample per epoch across 8 epochs on 3 slots — each arrival after
  // the third reuses (rotates) the oldest slot.
  for (util::u64 e = 0; e < 8; ++e) w.observe(e * 10, e * 1000);
  // At epoch 7 the window holds epochs 5, 6, 7 -> samples 50, 60, 70.
  EXPECT_EQ(w.count(7000), 3u);
  EXPECT_EQ(w.sum(7000), 50u + 60u + 70u);
  EXPECT_EQ(w.quantile(0.0, 7000), 50.0);
  EXPECT_EQ(w.quantile(1.0, 7000), 70.0);
  w.reset();
  EXPECT_EQ(w.count(7000), 0u);
}

TEST(MetricsRegistry, JsonParsesAndCarriesValues) {
  auto& reg = obs::metrics_registry::global();
  reg.reset();
  reg.counter("t.counter").add(41);
  reg.counter("t.counter").add(1);
  reg.gauge("t.gauge").set(7);
  reg.gauge("t.gauge").set(3);  // max stays 7
  auto& h = reg.histogram("t.hist", {10, 100});
  h.observe(5);
  h.observe(150);

  const jvalue doc = parse_json(reg.json());
  EXPECT_EQ(doc.at("counters").at("t.counter").num, 42);
  EXPECT_EQ(doc.at("gauges").at("t.gauge").at("value").num, 3);
  EXPECT_EQ(doc.at("gauges").at("t.gauge").at("max").num, 7);
  const jvalue& hist = doc.at("histograms").at("t.hist");
  EXPECT_EQ(hist.at("count").num, 2);
  EXPECT_EQ(hist.at("sum").num, 155);
  ASSERT_EQ(hist.at("bounds").arr.size(), 2u);
  ASSERT_EQ(hist.at("counts").arr.size(), 3u);
  EXPECT_EQ(hist.at("counts").arr[0].num, 1);
  EXPECT_EQ(hist.at("counts").arr[2].num, 1);
  reg.reset();
}

TEST(MetricsRegistry, JsonCarriesPercentilesAndWindows) {
  auto& reg = obs::metrics_registry::global();
  reg.reset();
  auto& h = reg.histogram("t.lat", {10, 100});
  for (util::u64 s = 0; s < 10; ++s) h.observe(s);
  auto& w = reg.windowed("t.lat", {10, 100});
  w.observe(7);

  const jvalue doc = parse_json(reg.json());
  const jvalue& hist = doc.at("histograms").at("t.lat");
  EXPECT_EQ(hist.at("p50").num, 5.0);
  EXPECT_TRUE(hist.has("p90"));
  EXPECT_TRUE(hist.has("p95"));
  EXPECT_TRUE(hist.has("p99"));
  const jvalue& win = doc.at("windows").at("t.lat");
  EXPECT_EQ(win.at("count").num, 1.0);
  EXPECT_EQ(win.at("p50").num, 7.0);
  EXPECT_GT(win.at("window_s").num, 0.0);
  reg.reset();
}

TEST(MetricsRegistry, ResetKeepsHandlesValid) {
  auto& reg = obs::metrics_registry::global();
  auto& c = reg.counter("t.reset");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("t.reset").value(), 2u);  // same node
  EXPECT_EQ(&reg.counter("t.reset"), &c);
  reg.reset();
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  obs::set_enabled(false);
  obs::trace_clear();
  {
    obs::span sp("ghost", "test");
    obs::counter_track("ghost.counter", 1);
  }
  const jvalue doc = parse_json(obs::trace_json());
  EXPECT_TRUE(events_named(doc, "ghost").empty());
}

TEST(Trace, JsonSchemaAndSpanContent) {
  obs::run_scope scope(true);
  obs::set_thread_name("obs-test-main");
  {
    obs::span sp("outer", "test");
    sp.arg("alpha", 3.5);
    sp.arg("beta", -2);
    obs::span inner("inner", "test");
  }
  obs::async_begin("apair", "test", 9);
  obs::async_end("apair", "test", 9);
  obs::counter_track("level", 4);

  const jvalue doc = parse_json(obs::trace_json());
  ASSERT_TRUE(doc.has("traceEvents"));
  for (const auto& ev : doc.at("traceEvents").arr) {
    ASSERT_TRUE(ev.has("name"));
    ASSERT_TRUE(ev.has("ph"));
    ASSERT_TRUE(ev.has("pid"));
    ASSERT_TRUE(ev.has("tid"));
  }

  const auto outer = events_named(doc, "outer");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0]->at("ph").str, "X");
  EXPECT_EQ(outer[0]->at("cat").str, "test");
  EXPECT_GE(outer[0]->at("dur").num, 0.0);
  EXPECT_EQ(outer[0]->at("args").at("alpha").num, 3.5);
  EXPECT_EQ(outer[0]->at("args").at("beta").num, -2);

  EXPECT_EQ(events_named(doc, "apair").size(), 2u);  // 'b' + 'e'
  const auto counters = events_named(doc, "level");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0]->at("ph").str, "C");

  // Thread-name metadata record for the calling thread.
  bool named = false;
  for (const auto* m : events_named(doc, "thread_name")) {
    named |= m->at("ph").str == "M" &&
             m->at("args").at("name").str == "obs-test-main";
  }
  EXPECT_TRUE(named);
}

TEST(Trace, FlowEventSchemaRoundTrips) {
  obs::run_scope scope(true);
  {
    obs::span sp("origin", "flowtest");
    obs::flow_begin("req", "flowtest", 7);
  }
  {
    obs::span sp("relay", "flowtest");
    obs::flow_step("req", "flowtest", 7);
  }
  {
    obs::span sp("sink", "flowtest");
    obs::flow_end("req", "flowtest", 7);
  }
  const jvalue doc = parse_json(obs::trace_json());
  const auto flows = events_named(doc, "req");
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0]->at("ph").str, "s");
  EXPECT_EQ(flows[1]->at("ph").str, "t");
  EXPECT_EQ(flows[2]->at("ph").str, "f");
  for (const auto* f : flows) {
    EXPECT_EQ(f->at("id").num, 7.0);
    EXPECT_EQ(f->at("cat").str, "flowtest");
  }
  // Flow ends bind to the enclosing slice's end — the Perfetto convention.
  EXPECT_EQ(flows[2]->at("bp").str, "e");
  EXPECT_FALSE(flows[0]->has("bp"));
  // The chain is causally ordered in export (stable ts sort).
  EXPECT_LE(flows[0]->at("ts").num, flows[1]->at("ts").num);
  EXPECT_LE(flows[1]->at("ts").num, flows[2]->at("ts").num);
}

TEST(Trace, RunScopesNestWithoutClearingTheOuterRun) {
  ASSERT_FALSE(obs::enabled());
  {
    obs::run_scope outer(true);
    obs::metrics_registry::global().counter("t.nest").add(3);
    { obs::span sp("outer-span", "nesttest"); }
    {
      // A nested scope (the per-query engine scope inside a serving
      // daemon's scope) must neither clear the rings/registry nor disable
      // tracing when it exits.
      obs::run_scope inner(true);
      EXPECT_TRUE(obs::enabled());
      EXPECT_EQ(obs::metrics_registry::global().counter("t.nest").value(), 3u)
          << "nested entry cleared the outer run's metrics";
    }
    EXPECT_TRUE(obs::enabled()) << "nested exit disabled the outer run";
    const jvalue doc = parse_json(obs::trace_json());
    EXPECT_EQ(events_named(doc, "outer-span").size(), 1u)
        << "nested scope cleared the outer run's trace";
    obs::metrics_registry::global().reset();
  }
  EXPECT_FALSE(obs::enabled()) << "outermost exit must restore disabled";
}

TEST(Trace, SpanNestingWellFormedPerThread) {
  obs::run_scope scope(true);
  auto emit_nested = [] {
    for (int i = 0; i < 50; ++i) {
      obs::span a("depth0", "nest");
      {
        obs::span b("depth1", "nest");
        obs::span c("depth2", "nest");
      }
      obs::span d("depth1b", "nest");
    }
  };
  std::thread t1(emit_nested), t2(emit_nested);
  t1.join();
  t2.join();

  // Within each thread, complete spans must nest like a call stack: sorted
  // by start time, every span either contains or is disjoint from the next
  // (no partial overlap).
  const jvalue doc = parse_json(obs::trace_json());
  std::map<double, std::vector<std::pair<double, double>>> by_tid;
  for (const auto& ev : doc.at("traceEvents").arr) {
    if (ev.at("ph").str != "X" || ev.at("cat").str != "nest") continue;
    by_tid[ev.at("tid").num].push_back(
        {ev.at("ts").num, ev.at("ts").num + ev.at("dur").num});
  }
  ASSERT_EQ(by_tid.size(), 2u);
  for (auto& [tid, spans] : by_tid) {
    ASSERT_EQ(spans.size(), 200u);  // 4 spans x 50 iterations
    // Start ascending, end DESCENDING: on identical start times the
    // enclosing span must come first for the stack check below.
    std::sort(spans.begin(), spans.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second > b.second;
              });
    std::vector<std::pair<double, double>> stack;
    for (const auto& sp : spans) {
      while (!stack.empty() && sp.first >= stack.back().second) stack.pop_back();
      if (!stack.empty()) {
        // Open ancestor: must fully contain this span.
        EXPECT_LE(sp.second, stack.back().second + 1e-6);
      }
      stack.push_back(sp);
    }
  }
}

TEST(Trace, ConcurrentRecordingFromFourThreads) {
  // num_queues=4-shaped load: four writer threads hammer spans, counters,
  // and registry metrics while the subsystem is live. The tsan ctest label
  // re-runs this under COF_SANITIZE=thread.
  obs::run_scope scope(true);
  auto& reg = obs::metrics_registry::global();
  auto& hist = reg.histogram("t.mt_hist", obs::default_latency_bounds_us());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &reg, &hist] {
      obs::set_thread_name("writer-" + std::to_string(t));
      for (int i = 0; i < 5000; ++i) {
        obs::span sp("mt", "test");
        sp.arg("i", i);
        obs::counter_track("mt.count", i);
        reg.counter("t.mt_counter").add(1);
        reg.gauge("t.mt_gauge").set(i);
        hist.observe(static_cast<util::u64>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(reg.counter("t.mt_counter").value(), 4u * 5000u);
  EXPECT_EQ(hist.count(), 4u * 5000u);
  // Export must parse even after ring wrap-around (rings drop oldest).
  const jvalue doc = parse_json(obs::trace_json());
  EXPECT_FALSE(events_named(doc, "mt").empty());
}

TEST(Trace, BackToBackRunsAreIndependent) {
  std::string first, second;
  {
    obs::run_scope scope(true);
    obs::metrics_registry::global().counter("t.run").add(11);
    obs::span sp("first-run-span", "test");
    sp.arg("x", 1);
  }
  // run_scope cleared on entry, so the export has to happen inside; emulate
  // the engine: export before the scope closes.
  {
    obs::run_scope scope(true);
    { obs::span sp("first-run-span", "test"); }
    first = obs::trace_json();
    EXPECT_EQ(obs::metrics_registry::global().counter("t.run").value(), 0u)
        << "run_scope must reset metric values from the previous run";
  }
  {
    obs::run_scope scope(true);
    { obs::span sp("second-run-span", "test"); }
    second = obs::trace_json();
  }
  const jvalue doc1 = parse_json(first);
  const jvalue doc2 = parse_json(second);
  EXPECT_EQ(events_named(doc1, "first-run-span").size(), 1u);
  EXPECT_TRUE(events_named(doc1, "second-run-span").empty());
  EXPECT_EQ(events_named(doc2, "second-run-span").size(), 1u);
  EXPECT_TRUE(events_named(doc2, "first-run-span").empty())
      << "second run's trace must not carry the first run's spans";
}

// ---------------------------------------------------------------------------
// Engine integration: a traced streaming run must produce a parseable
// Chrome trace carrying the full set of pipeline span names, for every
// host facade, plus the metrics snapshot and the stage-time breakdown.
// ---------------------------------------------------------------------------

struct temp_dir {
  std::filesystem::path path;
  temp_dir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("cof_obs_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~temp_dir() { std::filesystem::remove_all(path); }
};

genome::genome_t obs_genome() {
  genome::synth_params p;
  p.assembly = "obs-test";
  p.chromosomes = {{"chrA", 40000}, {"chrB", 20000}};
  p.seed = 977;
  auto g = genome::generate(p);
  // Plant the example input's first query (+TGG PAM) throughout both
  // chromosomes so every chunk produces comparer entries — the format and
  // spill spans only exist on chunks that yield records.
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  for (auto& chrom : g.chroms) {
    for (usize pos = 500; pos + site.size() < chrom.seq.size(); pos += 2000) {
      chrom.seq.replace(pos, site.size(), site);
    }
  }
  return g;
}

class FacadeTrace : public ::testing::TestWithParam<backend_kind> {};

TEST_P(FacadeTrace, StreamingRunEmitsAllPipelineSpans) {
  temp_dir dir;
  const auto g = obs_genome();
  const auto fasta = (dir.path / "g.fa").string();
  genome::write_fasta_file(fasta, g.chroms);
  const auto trace_path = (dir.path / "trace.json").string();
  const auto metrics_path = (dir.path / "metrics.json").string();

  auto cfg = parse_input(example_input("<mem>"));
  engine_options opt;
  opt.backend = GetParam();
  opt.max_chunk = 8192;
  opt.num_queues = 2;
  opt.trace_out = trace_path;
  opt.metrics_json = metrics_path;
  const auto out = run_search_streaming(cfg, fasta, opt);
  EXPECT_FALSE(obs::enabled()) << "run_scope must restore the disabled state";

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const jvalue doc = parse_json(ss.str());

  for (const char* name :
       {"decode", "queue.push", "queue.pop", "h2d.chunk", "finder",
        "comparer.batch", "fetch", "format", "spill", "merge"}) {
    EXPECT_FALSE(events_named(doc, name).empty())
        << "missing span '" << name << "' for backend "
        << backend_name(GetParam());
  }

  // The metrics snapshot parses and carries the streaming instruments.
  std::ifstream min(metrics_path);
  ASSERT_TRUE(min.good());
  std::stringstream ms;
  ms << min.rdbuf();
  const jvalue mdoc = parse_json(ms.str());
  EXPECT_EQ(mdoc.at("counters").at("stream.chunks").num,
            static_cast<double>(out.metrics.chunks));
  EXPECT_TRUE(mdoc.at("histograms").has("stream.device_us"));
  EXPECT_TRUE(mdoc.at("gauges").has("stream.queue_depth"));

  // Stage breakdown: one entry per queue, and device time was measured.
  ASSERT_EQ(out.queue_stages.size(), 2u);
  EXPECT_GT(out.stage_times.device_s, 0.0);
  EXPECT_GT(out.stage_times.decode_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFacades, FacadeTrace,
                         ::testing::Values(backend_kind::sycl,
                                           backend_kind::sycl_usm,
                                           backend_kind::sycl_twobit,
                                           backend_kind::opencl));

TEST(ObsEngine, UntracedRunLeavesSubsystemDisabled) {
  temp_dir dir;
  const auto g = obs_genome();
  const auto fasta = (dir.path / "g.fa").string();
  genome::write_fasta_file(fasta, g.chroms);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options opt;
  opt.backend = backend_kind::sycl;
  opt.max_chunk = 8192;
  obs::trace_clear();
  const auto out = run_search_streaming(cfg, fasta, opt);
  EXPECT_FALSE(obs::enabled());
  // Thread-name metadata ('M') persists across clears by design; no data
  // events may have been recorded.
  const jvalue doc = parse_json(obs::trace_json());
  for (const auto& ev : doc.at("traceEvents").arr) {
    EXPECT_EQ(ev.at("ph").str, "M") << "unexpected event: " << ev.at("name").str;
  }
  // The always-on stage breakdown is still populated.
  EXPECT_GT(out.stage_times.device_s, 0.0);
}

TEST(ObsEngine, BackToBackTracedRunsExportIndependentFiles) {
  temp_dir dir;
  const auto g = obs_genome();
  const auto fasta = (dir.path / "g.fa").string();
  genome::write_fasta_file(fasta, g.chroms);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options opt;
  opt.backend = backend_kind::sycl;
  opt.max_chunk = 8192;

  opt.trace_out = (dir.path / "t1.json").string();
  opt.metrics_json = (dir.path / "m1.json").string();
  const auto r1 = run_search_streaming(cfg, fasta, opt);
  opt.trace_out = (dir.path / "t2.json").string();
  opt.metrics_json = (dir.path / "m2.json").string();
  const auto r2 = run_search_streaming(cfg, fasta, opt);
  EXPECT_EQ(r1.records, r2.records);

  auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const jvalue m1 = parse_json(slurp((dir.path / "m1.json").string()));
  const jvalue m2 = parse_json(slurp((dir.path / "m2.json").string()));
  // Identical runs, independent registries: the second snapshot's chunk
  // counter covers run 2 only, not runs 1+2 accumulated.
  EXPECT_EQ(m1.at("counters").at("stream.chunks").num,
            m2.at("counters").at("stream.chunks").num);
  const jvalue t2 = parse_json(slurp((dir.path / "t2.json").string()));
  ASSERT_FALSE(t2.at("traceEvents").arr.empty());
}

TEST(ObsLog, ThreadOrdinalsAreStableAndDistinct) {
  const unsigned self = util::thread_ordinal();
  EXPECT_EQ(util::thread_ordinal(), self);  // stable within a thread
  unsigned other = self;
  std::thread t([&other] { other = util::thread_ordinal(); });
  t.join();
  EXPECT_NE(other, self);  // distinct across threads
}

}  // namespace
