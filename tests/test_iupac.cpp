// Tests and property checks for the IUPAC algebra — including the proof
// obligation that the kernels' Boolean chain equals the reference mismatch
// relation for all IUPAC inputs.
#include <gtest/gtest.h>

#include <string>

#include "core/kernels.hpp"
#include "genome/iupac.hpp"
#include "util/rng.hpp"

namespace {

using genome::casoffinder_mismatch;
using genome::complement;
using genome::iupac_mask;
using genome::iupac_match;
using genome::reverse_complement;

const std::string kCodes = "ACGTRYSWKMBDHVN";

TEST(Iupac, MaskBasics) {
  EXPECT_EQ(iupac_mask('A'), 1);
  EXPECT_EQ(iupac_mask('C'), 2);
  EXPECT_EQ(iupac_mask('G'), 4);
  EXPECT_EQ(iupac_mask('T'), 8);
  EXPECT_EQ(iupac_mask('U'), 8);  // RNA U = T
  EXPECT_EQ(iupac_mask('N'), 15);
  EXPECT_EQ(iupac_mask('R'), 5);   // A|G
  EXPECT_EQ(iupac_mask('y'), 10);  // case-insensitive, C|T
  EXPECT_EQ(iupac_mask('X'), 0);
  EXPECT_EQ(iupac_mask('-'), 0);
}

TEST(Iupac, CodeMaskRoundTrip) {
  for (char c : kCodes) {
    EXPECT_EQ(genome::iupac_code(iupac_mask(c)), c) << c;
  }
}

TEST(Iupac, IsIupac) {
  for (char c : kCodes) EXPECT_TRUE(genome::is_iupac(c));
  EXPECT_TRUE(genome::is_iupac('a'));
  EXPECT_FALSE(genome::is_iupac('Z'));
  EXPECT_FALSE(genome::is_iupac('@'));
}

TEST(Iupac, ComplementPairs) {
  EXPECT_EQ(complement('A'), 'T');
  EXPECT_EQ(complement('T'), 'A');
  EXPECT_EQ(complement('C'), 'G');
  EXPECT_EQ(complement('G'), 'C');
  EXPECT_EQ(complement('R'), 'Y');
  EXPECT_EQ(complement('Y'), 'R');
  EXPECT_EQ(complement('S'), 'S');
  EXPECT_EQ(complement('W'), 'W');
  EXPECT_EQ(complement('K'), 'M');
  EXPECT_EQ(complement('M'), 'K');
  EXPECT_EQ(complement('B'), 'V');
  EXPECT_EQ(complement('D'), 'H');
  EXPECT_EQ(complement('N'), 'N');
  EXPECT_EQ(complement('a'), 't');  // case preserved
  EXPECT_EQ(complement('?'), 'N');  // non-codes map to N
}

TEST(IupacProperty, ComplementIsInvolution) {
  for (char c : kCodes) EXPECT_EQ(complement(complement(c)), c) << c;
}

TEST(IupacProperty, ReverseComplementIsInvolution) {
  util::rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::string s;
    const auto len = 1 + rng.next_below(64);
    for (util::u64 i = 0; i < len; ++i) s += kCodes[rng.next_below(kCodes.size())];
    EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
  }
}

TEST(Iupac, MatchSubsetSemantics) {
  EXPECT_TRUE(iupac_match('N', 'A'));
  EXPECT_TRUE(iupac_match('R', 'A'));
  EXPECT_TRUE(iupac_match('R', 'G'));
  EXPECT_FALSE(iupac_match('R', 'C'));
  EXPECT_TRUE(iupac_match('N', 'R'));   // ref set within pattern set
  EXPECT_FALSE(iupac_match('R', 'N'));  // ref set exceeds pattern set
  EXPECT_FALSE(iupac_match('A', 'X'));  // empty ref set never matches
}

TEST(Mismatch, ConcreteBases) {
  EXPECT_FALSE(casoffinder_mismatch('A', 'A'));
  EXPECT_TRUE(casoffinder_mismatch('A', 'G'));
  EXPECT_TRUE(casoffinder_mismatch('A', 'N'));  // concrete pattern vs ref N
  EXPECT_FALSE(casoffinder_mismatch('N', 'A'));
  EXPECT_FALSE(casoffinder_mismatch('N', 'N'));
}

TEST(Mismatch, DegenerateCodesFollowUpstreamChain) {
  // R mismatches only the listed bases C,T; an unexpected ref (like N)
  // slips through — the upstream kernels' quirk, preserved deliberately.
  EXPECT_TRUE(casoffinder_mismatch('R', 'C'));
  EXPECT_TRUE(casoffinder_mismatch('R', 'T'));
  EXPECT_FALSE(casoffinder_mismatch('R', 'A'));
  EXPECT_FALSE(casoffinder_mismatch('R', 'N'));
  EXPECT_TRUE(casoffinder_mismatch('H', 'G'));
  EXPECT_FALSE(casoffinder_mismatch('H', 'A'));
  EXPECT_TRUE(casoffinder_mismatch('B', 'A'));
  EXPECT_TRUE(casoffinder_mismatch('V', 'T'));
  EXPECT_TRUE(casoffinder_mismatch('D', 'C'));
  EXPECT_TRUE(casoffinder_mismatch('S', 'A'));
  EXPECT_TRUE(casoffinder_mismatch('S', 'T'));
  EXPECT_TRUE(casoffinder_mismatch('K', 'A'));
  EXPECT_TRUE(casoffinder_mismatch('M', 'G'));
  EXPECT_TRUE(casoffinder_mismatch('W', 'C'));
}

TEST(MismatchProperty, DegenerateAgreesWithSetSemanticsOnACGT) {
  // For a concrete reference base, the chain must equal !iupac_match.
  for (char pat : kCodes) {
    for (char ref : std::string("ACGT")) {
      EXPECT_EQ(casoffinder_mismatch(pat, ref), !iupac_match(pat, ref))
          << pat << " vs " << ref;
    }
  }
}

TEST(MismatchProperty, ComplementSymmetry) {
  // mismatch(p, r) == mismatch(complement(p), complement(r)) — the identity
  // that makes reverse-strand compares reducible to forward compares.
  for (char pat : kCodes) {
    for (char ref : std::string("ACGT")) {
      EXPECT_EQ(casoffinder_mismatch(pat, ref),
                casoffinder_mismatch(complement(pat), complement(ref)))
          << pat << " vs " << ref;
    }
  }
}

// The kernel chain (with counting thunks) must equal casoffinder_mismatch
// for every IUPAC (pattern, reference) combination.
class ChainEquivalence : public ::testing::TestWithParam<char> {};

TEST_P(ChainEquivalence, MatchesReferenceRelation) {
  const char pat = GetParam();
  cof::direct_mem::item p;
  for (char ref : kCodes) {
    const bool chain =
        cof::chain_mismatch(p, [&] { return pat; }, [&] { return ref; });
    EXPECT_EQ(chain, casoffinder_mismatch(pat, ref)) << pat << " vs " << ref;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatternCodes, ChainEquivalence,
                         ::testing::ValuesIn(kCodes.begin(), kCodes.end()));

TEST(Iupac, UpperBase) {
  EXPECT_EQ(genome::upper_base('a'), 'A');
  EXPECT_EQ(genome::upper_base('A'), 'A');
  EXPECT_EQ(genome::upper_base('z'), 'Z');
  EXPECT_EQ(genome::upper_base('.'), '.');
}

}  // namespace
