// Integration tests of the two device pipelines (host programs) against
// each other and the serial reference, across seeds, thresholds, work-group
// sizes, variants and chunk geometries.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "genome/synth.hpp"

namespace {

using namespace cof;

genome::genome_t small_genome(util::u64 seed, util::usize len = 60000) {
  genome::synth_params p;
  p.assembly = "pipe-test";
  p.chromosomes = {{"chrA", len}, {"chrB", len / 2}};
  p.seed = seed;
  return genome::generate(p);
}

search_config small_config() {
  return parse_input(example_input("synth:unused"));
}

TEST(Pipelines, OclSyclSerialAgree) {
  auto g = small_genome(1);
  auto cfg = small_config();
  auto rs = run_search(cfg, g, {.backend = backend_kind::serial});
  auto ro = run_search(cfg, g, {.backend = backend_kind::opencl, .max_chunk = 16384});
  auto ry = run_search(cfg, g, {.backend = backend_kind::sycl, .max_chunk = 16384});
  EXPECT_EQ(rs.records, ro.records);
  EXPECT_EQ(rs.records, ry.records);
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, util::usize>> {};

TEST_P(PipelineSweep, BackendsAgreeAcrossGeometries) {
  const auto [seed, wg, chunk] = GetParam();
  auto g = small_genome(static_cast<util::u64>(seed), 30000);
  auto cfg = small_config();
  engine_options ser{.backend = backend_kind::serial};
  engine_options ocl{.backend = backend_kind::opencl,
                     .wg_size = static_cast<util::usize>(wg),
                     .max_chunk = chunk};
  engine_options syc{.backend = backend_kind::sycl,
                     .wg_size = static_cast<util::usize>(wg),
                     .max_chunk = chunk};
  auto rs = run_search(cfg, g, ser);
  auto ro = run_search(cfg, g, ocl);
  auto ry = run_search(cfg, g, syc);
  EXPECT_EQ(rs.records, ro.records);
  EXPECT_EQ(rs.records, ry.records);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Values(std::tuple{2, 0, 8192u}, std::tuple{3, 64, 4096u},
                      std::tuple{4, 256, 50000u}, std::tuple{5, 32, 1000u},
                      std::tuple{6, 128, 65536u}));

class VariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(VariantSweep, AllComparerVariantsMatchSerial) {
  const auto v = static_cast<comparer_variant>(GetParam());
  auto g = small_genome(7, 25000);
  auto cfg = small_config();
  auto rs = run_search(cfg, g, {.backend = backend_kind::serial});
  for (auto backend : {backend_kind::opencl, backend_kind::sycl}) {
    engine_options opt{.backend = backend, .variant = v, .max_chunk = 9000};
    auto r = run_search(cfg, g, opt);
    EXPECT_EQ(r.records, rs.records)
        << backend_name(backend) << "/" << comparer_variant_name(v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantSweep,
                         ::testing::Range(0, kNumComparerVariants));

TEST(Pipelines, SiteStraddlingChunkBoundaryIsFound) {
  // Place a guaranteed hit exactly across a chunk boundary and search with a
  // chunk size that splits it.
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(3000, 'T')});
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";  // query0 + TGG PAM
  const util::usize chunk_size = 1000;
  const util::usize pos = chunk_size - 10;  // straddles the first boundary
  g.chroms[0].seq.replace(pos, site.size(), site);
  auto cfg = small_config();
  for (auto backend : {backend_kind::opencl, backend_kind::sycl}) {
    engine_options opt{.backend = backend, .max_chunk = chunk_size};
    auto r = run_search(cfg, g, opt);
    bool found = false;
    for (const auto& rec : r.records) {
      if (rec.query_index == 0 && rec.position == pos && rec.direction == '+' &&
          rec.mismatches == 0) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << backend_name(backend);
  }
}

TEST(Pipelines, OverlapDoesNotDuplicateRecords) {
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(2000, 'T')});
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  g.chroms[0].seq.replace(500, site.size(), site);  // interior of chunk 1&2 overlap
  auto cfg = small_config();
  engine_options opt{.backend = backend_kind::sycl, .max_chunk = 512};
  auto r = run_search(cfg, g, opt);
  int hits = 0;
  for (const auto& rec : r.records) {
    hits += (rec.query_index == 0 && rec.position == 500 && rec.direction == '+');
  }
  EXPECT_EQ(hits, 1);
}

TEST(Pipelines, ChunkSmallerThanPatternYieldsNothing) {
  genome::genome_t g;
  g.chroms.push_back({"tiny", "ACGTACGTAC"});  // 10 < plen 23
  auto cfg = small_config();
  for (auto backend : {backend_kind::opencl, backend_kind::sycl}) {
    auto r = run_search(cfg, g, {.backend = backend});
    EXPECT_TRUE(r.records.empty());
  }
}

TEST(Pipelines, MetricsAccumulate) {
  auto g = small_genome(8, 20000);
  auto cfg = small_config();
  engine_options opt{.backend = backend_kind::sycl, .max_chunk = 8192};
  auto r = run_search(cfg, g, opt);
  EXPECT_GT(r.metrics.chunks, 1u);
  EXPECT_EQ(r.metrics.pipeline.finder_launches, r.metrics.chunks);
  EXPECT_GT(r.metrics.pipeline.h2d_bytes, g.total_bases());  // chunks + patterns
  EXPECT_GT(r.metrics.pipeline.kernel_nanos, 0u);
  EXPECT_GT(r.metrics.elapsed_seconds, 0.0);
  // one comparer launch per non-empty chunk per query
  EXPECT_LE(r.metrics.pipeline.comparer_launches,
            r.metrics.chunks * cfg.queries.size());
}

TEST(Pipelines, CountingModeMatchesDirectResults) {
  auto g = small_genome(9, 20000);
  auto cfg = small_config();
  prof::profiler prof;
  engine_options direct{.backend = backend_kind::sycl, .max_chunk = 8192};
  engine_options counting{.backend = backend_kind::sycl,
                          .max_chunk = 8192,
                          .counting = true,
                          .profiler = &prof};
  auto rd = run_search(cfg, g, direct);
  auto rc = run_search(cfg, g, counting);
  EXPECT_EQ(rd.records, rc.records);
  EXPECT_GT(prof.get("finder").events[prof::ev::work_item], 0u);
  EXPECT_GT(prof.get("comparer/base").events[prof::ev::global_load], 0u);
}

TEST(Pipelines, OclCountingAlsoRecords) {
  auto g = small_genome(10, 15000);
  auto cfg = small_config();
  prof::profiler prof;
  engine_options opt{.backend = backend_kind::opencl,
                     .max_chunk = 8192,
                     .counting = true,
                     .profiler = &prof};
  auto r = run_search(cfg, g, opt);
  EXPECT_GT(prof.get("comparer/base").events[prof::ev::work_item], 0u);
  EXPECT_GT(prof.get("comparer/base").launches, 0u);
}

TEST(Pipelines, PlantedRecallAllMismatchLevels) {
  auto g = small_genome(11, 80000);
  auto cfg = small_config();
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  std::vector<genome::planted_site> all;
  for (unsigned mm = 0; mm <= 5; ++mm) {
    auto planted = genome::plant_sites(g, guide, cfg.pattern, 3, mm, 200 + mm);
    all.insert(all.end(), planted.begin(), planted.end());
  }
  auto r = run_search(cfg, g, {.backend = backend_kind::sycl, .max_chunk = 16384});
  for (const auto& p : all) {
    bool found = false;
    for (const auto& rec : r.records) {
      if (rec.query_index == 0 && rec.chrom_index == p.chrom_index &&
          rec.position == p.position && rec.direction == p.strand &&
          rec.mismatches == p.mismatches) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "planted mm=" << p.mismatches << " at " << p.position;
  }
}

}  // namespace
