// Input-file format tests.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/config.hpp"

namespace {

TEST(Config, ParsesExampleInput) {
  auto cfg = cof::parse_input(cof::example_input("synth:hg19"));
  EXPECT_EQ(cfg.genome_path, "synth:hg19");
  EXPECT_EQ(cfg.pattern, "NNNNNNNNNNNNNNNNNNNNNRG");
  ASSERT_EQ(cfg.queries.size(), 3u);
  EXPECT_EQ(cfg.queries[0].seq, "GGCCGACCTGTCGCTGACGCNNN");
  EXPECT_EQ(cfg.queries[0].max_mismatches, 5);
}

TEST(Config, SkipsCommentsAndBlankLines) {
  auto cfg = cof::parse_input(
      "# genome\n\n/g.fa\n# pattern\nNNGG\n\nACGG 2\n# done\n");
  EXPECT_EQ(cfg.genome_path, "/g.fa");
  EXPECT_EQ(cfg.pattern, "NNGG");
  ASSERT_EQ(cfg.queries.size(), 1u);
  EXPECT_EQ(cfg.queries[0].max_mismatches, 2);
}

TEST(Config, NormalisesCase) {
  auto cfg = cof::parse_input("/g\nnngg\nacgg 1\n");
  EXPECT_EQ(cfg.pattern, "NNGG");
  EXPECT_EQ(cfg.queries[0].seq, "ACGG");
}

TEST(ConfigDeath, QueryLengthMismatch) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)cof::parse_input("/g\nNNGG\nACGGT 1\n"), "length differs");
}

TEST(ConfigDeath, MalformedQueryLine) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)cof::parse_input("/g\nNNGG\nACGG\n"), "query line");
  EXPECT_DEATH((void)cof::parse_input("/g\nNNGG\nACGG x\n"), "bad mismatch");
}

TEST(ConfigDeath, MissingSections) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)cof::parse_input(""), "genome line");
  EXPECT_DEATH((void)cof::parse_input("/g\nNNGG\n"), "no queries");
}

TEST(Config, ReadFromFile) {
  namespace fs = std::filesystem;
  const auto path =
      fs::temp_directory_path() / ("cof_cfg_" + std::to_string(::getpid()) + ".txt");
  {
    std::ofstream out(path);
    out << cof::example_input("synth:hg38");
  }
  auto cfg = cof::read_input_file(path.string());
  EXPECT_EQ(cfg.genome_path, "synth:hg38");
  EXPECT_EQ(cfg.queries.size(), 3u);
  fs::remove(path);
}

TEST(ConfigDeath, MissingFile) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)cof::read_input_file("/no/such/input.txt"), "cannot open");
}

}  // namespace
