// Compatibility shim for the bundled GoogleTest, which predates the
// GTEST_FLAG_SET macro (added in googletest 1.12). Death tests here only
// set death_test_style; map the macro onto the classic flag accessor.
// Include after <gtest/gtest.h>.
#pragma once

#include <gtest/gtest.h>

#ifndef GTEST_FLAG_SET
#define GTEST_FLAG_SET(name, value) (::testing::GTEST_FLAG(name) = (value))
#endif
