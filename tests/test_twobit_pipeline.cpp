// 2-bit packed pipeline tests: kernel-level semantics and end-to-end
// equivalence with the char pipelines on ACGTN genomes, plus the transfer
// saving the format exists for.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/kernels_twobit.hpp"
#include "genome/synth.hpp"
#include "genome/twobit.hpp"

namespace {

using namespace cof;

TEST(TwobitMismatch, MatchesCharSemanticsOnConcreteBases) {
  const std::string ref = "ACGT";
  const auto packed = genome::twobit_seq::encode(ref);
  direct_mem::item p;
  const std::string codes = "ACGTRYSWKMBDHVN";
  for (char pat : codes) {
    for (usize i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(twobit_mismatch(p, pat, packed.packed().data(),
                                packed.ambiguity_words().data(), i),
                genome::casoffinder_mismatch(pat, ref[i]))
          << pat << " vs " << ref[i];
    }
  }
}

TEST(TwobitMismatch, AmbiguousReferenceBehavesLikeN) {
  const auto packed = genome::twobit_seq::encode("NNNN");
  direct_mem::item p;
  const std::string codes = "ACGTRYSWKMBDHVN";
  for (char pat : codes) {
    EXPECT_EQ(twobit_mismatch(p, pat, packed.packed().data(),
                              packed.ambiguity_words().data(), 0),
              genome::casoffinder_mismatch(pat, 'N'))
        << pat;
  }
}

genome::genome_t test_genome(util::u64 seed, util::usize len = 40000) {
  genome::synth_params p;
  p.assembly = "tb-test";
  p.chromosomes = {{"chrA", len}};
  p.seed = seed;
  return genome::generate(p);
}

TEST(TwobitPipeline, MatchesCharPipeline) {
  auto g = test_genome(31);
  auto cfg = parse_input(example_input("<mem>"));
  auto chars = run_search(cfg, g, {.backend = backend_kind::sycl, .max_chunk = 16384});
  auto packed =
      run_search(cfg, g, {.backend = backend_kind::sycl_twobit, .max_chunk = 16384});
  EXPECT_EQ(packed.records, chars.records);
}

class TwobitSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwobitSweep, MatchesSerialAcrossSeeds) {
  auto g = test_genome(static_cast<util::u64>(100 + GetParam()), 20000);
  auto cfg = parse_input(example_input("<mem>"));
  auto serial = run_search(cfg, g, {.backend = backend_kind::serial});
  auto packed =
      run_search(cfg, g, {.backend = backend_kind::sycl_twobit, .max_chunk = 7000});
  EXPECT_EQ(packed.records, serial.records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwobitSweep, ::testing::Range(0, 5));

TEST(TwobitPipeline, UploadsFractionOfCharBytes) {
  auto g = test_genome(32);
  auto cfg = parse_input(example_input("<mem>"));
  auto chars = run_search(cfg, g, {.backend = backend_kind::sycl, .max_chunk = 16384});
  auto packed =
      run_search(cfg, g, {.backend = backend_kind::sycl_twobit, .max_chunk = 16384});
  // 2 bits/base + 1 amb bit/base ~= 0.375x, plus identical pattern traffic.
  EXPECT_LT(packed.metrics.pipeline.h2d_bytes,
            chars.metrics.pipeline.h2d_bytes / 2);
}

TEST(TwobitPipeline, PlantedRecallWithGaps) {
  auto g = test_genome(33, 60000);
  auto cfg = parse_input(example_input("<mem>"));
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  auto planted = genome::plant_sites(g, guide, cfg.pattern, 5, 1, 77);
  auto r =
      run_search(cfg, g, {.backend = backend_kind::sycl_twobit, .max_chunk = 16384});
  for (const auto& site : planted) {
    bool found = false;
    for (const auto& rec : r.records) {
      if (rec.query_index == 0 && rec.position == site.position &&
          rec.direction == site.strand && rec.mismatches == 1) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << site.position;
  }
}

TEST(TwobitPipeline, CountingModeWorks) {
  auto g = test_genome(34, 15000);
  auto cfg = parse_input(example_input("<mem>"));
  prof::profiler prof;
  auto r = run_search(cfg, g,
                      {.backend = backend_kind::sycl_twobit,
                       .max_chunk = 8192,
                       .counting = true,
                       .profiler = &prof});
  EXPECT_GT(prof.get("comparer/2bit").events[prof::ev::global_load], 0u);
  // The packed comparer reads bytes/words instead of chars: fewer load
  // *bytes* per compare than chars would need at the same compare count.
  auto base = run_search(cfg, g, {.backend = backend_kind::sycl, .max_chunk = 8192});
  EXPECT_EQ(r.records, base.records);
}

}  // namespace
