// Index/query split suite: .cofidx round-trip (build → persist → load →
// query) property tests on synth genomes, warm-vs-cold byte-identity across
// every backend and queue count, zero-decode/zero-finder warm-path
// assertions via the obs counters, device upload-once semantics, and
// corrupt-index hardening (truncation, bad magic, checksum mismatch,
// version skew — clean site-named errors, never UB reads).
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/engine.hpp"
#include "core/engine_stream.hpp"
#include "core/index.hpp"
#include "genome/fasta.hpp"
#include "genome/synth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace {

namespace fs = std::filesystem;

struct temp_dir {
  fs::path path;
  temp_dir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cof_index_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~temp_dir() { fs::remove_all(path); }
};

genome::genome_t index_genome(util::u64 seed) {
  genome::synth_params p;
  p.assembly = "index-test";
  p.chromosomes = {{"chrA", 40000}, {"chrB", 15000}};
  p.seed = seed;
  return genome::generate(p);
}

struct stream_case {
  cof::search_config cfg;
  std::string file;
};

/// Synth genome (leading telomere N runs exercise the exception list) with
/// planted off-target sites, written to FASTA — every run has records.
stream_case make_case(const temp_dir& dir, util::u64 seed, util::usize planted) {
  stream_case c;
  auto g = index_genome(seed);
  c.cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = c.cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, c.cfg.pattern, planted, 2, seed + 1);
  c.file = (dir.path / "g.fa").string();
  genome::write_fasta_file(c.file, g.chroms);
  return c;
}

bool index_equal(const cof::genome_index& a, const cof::genome_index& b) {
  if (a.pattern != b.pattern || a.max_chunk != b.max_chunk ||
      a.source_bases != b.source_bases || a.content_hash != b.content_hash ||
      a.chrom_names != b.chrom_names || a.chunks.size() != b.chunks.size()) {
    return false;
  }
  for (util::usize i = 0; i < a.chunks.size(); ++i) {
    const auto& x = a.chunks[i];
    const auto& y = b.chunks[i];
    if (x.chrom_index != y.chrom_index || x.start != y.start ||
        x.text != y.text || x.loci != y.loci || x.flags != y.flags) {
      return false;
    }
  }
  return true;
}

// --- round-trip property -----------------------------------------------------

/// build → persist → load must be lossless for every field — including the
/// byte-exact chunk text, whose non-ACGT bases ride the exception list.
TEST(IndexRoundTrip, PersistLoadIsLossless) {
  temp_dir dir;
  for (const util::u64 seed : {201u, 202u, 203u}) {
    const auto c = make_case(dir, seed, 6);
    const genome::genome_t g = genome::load_genome(c.file);
    cof::engine_options opt{.backend = cof::backend_kind::sycl,
                            .max_chunk = 9000};
    const auto built = cof::build_index(g, c.cfg.pattern, opt);
    ASSERT_GT(built.total_hits(), 0u) << "seed " << seed;
    // The synth telomeres guarantee non-ACGT text, so the exception path is
    // actually exercised.
    bool has_n = false;
    for (const auto& ch : built.chunks) {
      has_n = has_n || ch.text.find('N') != std::string::npos;
    }
    EXPECT_TRUE(has_n) << "seed " << seed;

    const std::string path = (dir.path / "rt.cofidx").string();
    cof::save_index(path, built);
    const auto loaded = cof::load_index(path);
    EXPECT_TRUE(index_equal(built, loaded)) << "seed " << seed;
  }
}

/// The full serving loop: a loaded index answers queries identically to the
/// just-built one and to a cold full run.
TEST(IndexRoundTrip, LoadedIndexAnswersIdenticallyToColdRun) {
  temp_dir dir;
  const auto c = make_case(dir, 204, 6);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto cold = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(cold.records.empty());

  const genome::genome_t g = genome::load_genome(c.file);
  const auto built = cof::build_index(g, c.cfg.pattern, opt);
  const std::string path = (dir.path / "rt.cofidx").string();
  cof::save_index(path, built);
  const auto loaded = cof::load_index(path);

  const auto from_built = cof::run_query(built, c.cfg.queries, opt);
  const auto from_loaded = cof::run_query(loaded, c.cfg.queries, opt);
  EXPECT_EQ(from_built.records, cold.records);
  EXPECT_EQ(from_loaded.records, cold.records);
}

// --- warm-vs-cold byte-identity ----------------------------------------------

/// 4 backends × {1,2,4} queues: the warm index path (in-memory and via
/// .cofidx) must be byte-identical to the classic cold streaming run.
TEST(IndexQuery, WarmMatchesColdOnEveryBackendAndQueueCount) {
  temp_dir dir;
  const auto c = make_case(dir, 205, 8);
  const std::string path = (dir.path / "g.cofidx").string();

  // One index serves every backend: finder hits depend only on
  // (genome, PAM), not on the host programming model.
  {
    const genome::genome_t g = genome::load_genome(c.file);
    cof::engine_options bopt{.backend = cof::backend_kind::sycl,
                             .max_chunk = 9000};
    cof::save_index(path, cof::build_index(g, c.cfg.pattern, bopt));
  }

  for (const auto backend :
       {cof::backend_kind::opencl, cof::backend_kind::sycl,
        cof::backend_kind::sycl_usm, cof::backend_kind::sycl_twobit}) {
    cof::engine_options opt{.backend = backend, .max_chunk = 9000};
    const auto cold = cof::run_search_streaming(c.cfg, c.file, opt);
    ASSERT_FALSE(cold.records.empty()) << cof::backend_name(backend);
    for (const util::usize queues : {1u, 2u, 4u}) {
      opt.num_queues = queues;
      opt.index_path = path;
      const auto warm = cof::run_search_streaming(c.cfg, c.file, opt);
      EXPECT_EQ(warm.records, cold.records)
          << cof::backend_name(backend) << " queues=" << queues;
      EXPECT_TRUE(warm.used_index);
      EXPECT_TRUE(warm.index_cache_hit);
      opt.index_path.clear();
    }
  }
}

/// The batched multi-query coalescing must not change results: 1 guide at a
/// time vs all guides in one query() call agree (per-chunk comparer_multi
/// launch covers every guide).
TEST(IndexQuery, CoalescedGuidesMatchPerGuideQueries) {
  temp_dir dir;
  const auto c = make_case(dir, 206, 6);
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);

  cof::index_query_session session(idx, opt);
  const auto coalesced = session.query(c.cfg.queries);
  std::vector<cof::ot_record> separate;
  for (util::usize qi = 0; qi < c.cfg.queries.size(); ++qi) {
    auto one = session.query({c.cfg.queries[qi]});
    for (auto& r : one.records) {
      r.query_index = static_cast<util::u32>(qi);  // restore the batch index
      separate.push_back(std::move(r));
    }
  }
  cof::sort_and_dedup(separate);
  EXPECT_EQ(coalesced.records, separate);
}

// --- zero-decode / zero-finder warm path -------------------------------------

/// Acceptance: warm queries do ZERO FASTA decode and ZERO finder launches,
/// asserted via the obs counters and the pipeline metrics.
TEST(IndexQuery, WarmPathDoesZeroDecodeAndZeroFinderLaunches) {
  temp_dir dir;
  const auto c = make_case(dir, 207, 6);
  const std::string path = (dir.path / "g.cofidx").string();
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};

  // Cold run with the cache path set: builds + persists (cache miss).
  opt.index_path = path;
  opt.metrics_json = (dir.path / "cold.json").string();  // enables obs
  const auto cold = cof::run_search_streaming(c.cfg, c.file, opt);
  ASSERT_FALSE(cold.records.empty());
  EXPECT_TRUE(cold.used_index);
  EXPECT_FALSE(cold.index_cache_hit);
  EXPECT_GT(cold.streamed_bases, 0u);  // the build decoded the genome once
  EXPECT_EQ(obs::metrics_registry::global().counter("index.cache.miss").value(),
            1u);

  // Warm run: loads the cache — no decode, no finder.
  opt.metrics_json = (dir.path / "warm.json").string();
  const auto warm = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(warm.records, cold.records);
  EXPECT_TRUE(warm.index_cache_hit);
  EXPECT_EQ(warm.streamed_bases, 0u);                       // zero FASTA decode
  EXPECT_EQ(warm.metrics.pipeline.finder_launches, 0u);     // zero finder
  EXPECT_GT(warm.metrics.pipeline.comparer_launches, 0u);   // comparer only
  EXPECT_GT(warm.stage_times.query_s, 0.0);
  EXPECT_GT(warm.stage_times.index_load_s, 0.0);
  EXPECT_EQ(warm.stage_times.index_build_s, 0.0);
  auto& reg = obs::metrics_registry::global();
  EXPECT_EQ(reg.counter("index.cache.hit").value(), 1u);
  EXPECT_GT(reg.counter("index.chunk.miss").value(), 0u);
  EXPECT_EQ(warm.index_chunk_misses, reg.counter("index.chunk.miss").value());
}

/// run_query must reject guides whose length differs from the indexed
/// pattern with the same clean index_error the engine paths give — never a
/// wrong-plen slice.
TEST(IndexQuery, RunQueryRejectsWrongGuideLength) {
  temp_dir dir;
  const auto c = make_case(dir, 210, 4);
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);
  EXPECT_THROW((void)cof::run_query(idx, {{"ACGT", 2}}, opt), cof::index_error);
  cof::index_query_session session(idx, opt);
  EXPECT_THROW((void)session.query({{"ACGT", 2}}), cof::index_error);
}

/// An index built from genome X must never silently answer for genome Y —
/// even one with identical chromosome names and sizes (content hash). Both
/// the in-memory run_search path and the streaming warm path reject it.
TEST(IndexQuery, MismatchedGenomeIsRejected) {
  temp_dir dir;
  const auto c = make_case(dir, 211, 4);
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);
  const std::string path = (dir.path / "g.cofidx").string();
  cof::save_index(path, idx);

  // Same names, same lengths, different seed: only the content differs.
  const genome::genome_t other = index_genome(212);
  ASSERT_EQ(other.total_bases(), g.total_bases());
  cof::engine_options wopt = opt;
  wopt.index = &idx;
  EXPECT_THROW((void)cof::run_search(c.cfg, other, wopt), cof::index_error);

  const std::string other_file = (dir.path / "other.fa").string();
  genome::write_fasta_file(other_file, other.chroms);
  cof::engine_options sopt = opt;
  sopt.index_path = path;
  EXPECT_THROW((void)cof::run_search_streaming(c.cfg, other_file, sopt),
               cof::index_error);

  // The matching genome still passes both paths.
  EXPECT_FALSE(cof::run_search(c.cfg, g, wopt).records.empty());
  EXPECT_FALSE(cof::run_search_streaming(c.cfg, c.file, sopt).records.empty());
}

/// Outcome metrics are per-query() deltas, not the pipeline's cumulative
/// lifetime counters: in a long-lived session the second call must not
/// double-count the first one's launches and transfers.
TEST(IndexQuery, SessionMetricsArePerQueryCall) {
  temp_dir dir;
  const auto c = make_case(dir, 213, 4);
  const genome::genome_t g = genome::load_genome(c.file);
  // One chunk per chromosome, one slot each: chunks stay device-resident,
  // so the second call's h2d delta is query uploads only.
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .max_chunk = 1 << 20};
  opt.num_queues = 2;
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);

  cof::index_query_session session(idx, opt);
  const auto first = session.query(c.cfg.queries);
  ASSERT_GT(first.metrics.pipeline.comparer_launches, 0u);
  const auto second = session.query(c.cfg.queries);
  EXPECT_EQ(second.metrics.pipeline.comparer_launches,
            first.metrics.pipeline.comparer_launches);
  // Resident chunks re-upload nothing, so the second call moves fewer
  // host-to-device bytes than the first (query uploads only).
  EXPECT_LT(second.metrics.pipeline.h2d_bytes,
            first.metrics.pipeline.h2d_bytes);
  EXPECT_EQ(second.metrics.per_queue.size(), first.metrics.per_queue.size());
}

/// Upload-once semantics: a slot that owns one chunk uploads it on the
/// first query and reuses the device-resident buffers on every later one.
TEST(IndexQuery, DeviceResidentChunksAreUploadedOnce) {
  temp_dir dir;
  const auto c = make_case(dir, 208, 6);
  const genome::genome_t g = genome::load_genome(c.file);
  // max_chunk > chromosome size: one chunk per chromosome, one slot each.
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .max_chunk = 1 << 20};
  opt.num_queues = 2;
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);
  ASSERT_EQ(idx.chunks.size(), 2u);

  cof::index_query_session session(idx, opt);
  const auto first = session.query(c.cfg.queries);
  EXPECT_EQ(session.chunk_misses(), 2u);
  EXPECT_EQ(session.chunk_hits(), 0u);
  const auto second = session.query(c.cfg.queries);
  EXPECT_EQ(session.chunk_misses(), 2u);  // no re-upload
  EXPECT_EQ(session.chunk_hits(), 2u);
  EXPECT_EQ(second.records, first.records);
  EXPECT_EQ(second.metrics.pipeline.finder_launches, 0u);
}

/// An undersized max_entries cap on a warm query recovers with the engine's
/// bounded grow-retry policy (sticky per-slot capacity seeded by the true
/// demand) instead of failing the query — and with recovery disabled the
/// overflow surfaces as the typed error, exactly like the streaming path.
TEST(IndexQuery, WarmQueryRecoversFromUndersizedEntryCap) {
  temp_dir dir;
  const auto c = make_case(dir, 214, 8);
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  opt.num_queues = 2;
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);

  // Worst-case-sized reference records.
  cof::index_query_session reference(idx, opt);
  const auto expected = reference.query(c.cfg.queries).records;
  ASSERT_FALSE(expected.empty());

  cof::engine_options tight = opt;
  tight.max_entries = 1;  // guaranteed overflow on every populated chunk
  cof::index_query_session session(idx, tight);
  const auto out = session.query(c.cfg.queries);
  EXPECT_EQ(out.records, expected);
  EXPECT_GT(out.metrics.recovery.overflow_retries, 0u);
  EXPECT_GT(out.metrics.recovery.recovered_overflows, 0u);
  // The grown capacity is sticky: the repeat query overflows nothing.
  const auto repeat = session.query(c.cfg.queries);
  EXPECT_EQ(repeat.records, expected);
  EXPECT_EQ(repeat.metrics.recovery.overflow_retries, 0u);

  cof::engine_options fatal = tight;
  fatal.overflow_recovery = false;
  cof::index_query_session dying(idx, fatal);
  EXPECT_THROW((void)dying.query(c.cfg.queries), cof::entry_overflow_error);
}

/// index.chunk.hit/miss land in the metrics registry even when tracing is
/// off — a --metrics-json run without --trace-out must still show the
/// residency behaviour (they used to be gated on obs::enabled()).
TEST(IndexQuery, ResidencyCountersRecordWithoutTracing) {
  temp_dir dir;
  const auto c = make_case(dir, 215, 4);
  const genome::genome_t g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .max_chunk = 1 << 20};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);

  ASSERT_FALSE(obs::enabled());  // no run_scope here: tracing is off
  auto& reg = obs::metrics_registry::global();
  const util::u64 miss0 = reg.counter("index.chunk.miss").value();
  const util::u64 hit0 = reg.counter("index.chunk.hit").value();
  cof::index_query_session session(idx, opt);
  (void)session.query(c.cfg.queries);
  (void)session.query(c.cfg.queries);
  EXPECT_GT(reg.counter("index.chunk.miss").value(), miss0);
  EXPECT_GT(reg.counter("index.chunk.hit").value(), hit0);
}

// --- corrupt-index hardening -------------------------------------------------

class CorruptIndex : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto c = make_case(dir_, 209, 4);
    const genome::genome_t g = genome::load_genome(c.file);
    cof::engine_options opt{.backend = cof::backend_kind::sycl,
                            .max_chunk = 9000};
    idx_ = cof::build_index(g, c.cfg.pattern, opt);
    path_ = (dir_.path / "g.cofidx").string();
    cof::save_index(path_, idx_);
    cfg_ = c.cfg;
  }

  std::string read_file() const {
    std::ifstream f(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  }
  void write_file(const std::string& data) const {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f << data;
  }
  void expect_load_fails(const std::string& needle) const {
    try {
      (void)cof::load_index(path_);
      FAIL() << "expected index_error (" << needle << ")";
    } catch (const cof::index_error& e) {
      EXPECT_EQ(e.site(), std::string("index.load"));
      EXPECT_NE(std::string(e.what()).find("index.load"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  }

  temp_dir dir_;
  cof::genome_index idx_;
  std::string path_;
  cof::search_config cfg_;
};

TEST_F(CorruptIndex, TruncatedFileFailsClean) {
  const std::string data = read_file();
  // Every truncation point must fail clean — header, offset table, payload.
  for (const util::usize keep :
       {util::usize{3}, util::usize{17}, data.size() / 2, data.size() - 1}) {
    write_file(data.substr(0, keep));
    expect_load_fails("truncated");
  }
}

TEST_F(CorruptIndex, BadMagicFailsClean) {
  std::string data = read_file();
  data[0] = 'X';
  write_file(data);
  expect_load_fails("bad magic");
}

TEST_F(CorruptIndex, VersionSkewFailsClean) {
  std::string data = read_file();
  data[4] = 99;  // version field, little-endian low byte
  write_file(data);
  expect_load_fails("unsupported index version 99");
}

TEST_F(CorruptIndex, PayloadChecksumMismatchFailsClean) {
  std::string data = read_file();
  data.back() = static_cast<char>(data.back() ^ 0x40);  // flip a payload bit
  write_file(data);
  expect_load_fails("checksum mismatch");
}

/// A locus in (text_len - plen, text_len) passes a naive end-of-chunk check
/// but would make both the host site-string slice and the comparer kernels
/// read past the chunk text — load_index must reject any locus that leaves
/// less than a full pattern window.
TEST_F(CorruptIndex, LocusWithoutFullPatternWindowFailsClean) {
  auto hostile = idx_;
  util::usize ci = 0;
  while (ci < hostile.chunks.size() && hostile.chunks[ci].loci.empty()) ++ci;
  ASSERT_LT(ci, hostile.chunks.size()) << "need a chunk with finder hits";
  auto& ch = hostile.chunks[ci];
  ASSERT_GT(idx_.pattern.size(), 1u);

  ch.loci[0] = static_cast<util::u32>(ch.text.size() - 1);  // near-end
  cof::save_index(path_, hostile);
  expect_load_fails("hit locus");

  ch.loci[0] = static_cast<util::u32>(ch.text.size() + 5);  // past-end
  cof::save_index(path_, hostile);
  expect_load_fails("hit locus");
}

TEST_F(CorruptIndex, MissingFileFailsClean) {
  fs::remove(path_);
  expect_load_fails("cannot open");
}

TEST_F(CorruptIndex, PatternMismatchIsRejected) {
  auto cfg = cfg_;
  cfg.pattern = "NNNNNNNNNNNNNNNNNNNNNGG";  // index was built for ...NRG
  EXPECT_THROW(cof::check_index_compatible(idx_, cfg), cof::index_error);
  cfg = cfg_;
  cfg.queries[0].seq = "ACGT";  // length != pattern length
  EXPECT_THROW(cof::check_index_compatible(idx_, cfg), cof::index_error);
}

/// The CLI surfaces a corrupt cache as a clean fatal report (util::die),
/// never UB: same conversion every front end applies.
TEST_F(CorruptIndex, CliStyleHandlingDiesWithSiteNamedReport) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::string data = read_file();
  data[0] = 'X';
  write_file(data);
  const std::string p = path_;
  EXPECT_DEATH(
      {
        try {
          (void)cof::load_index(p);
        } catch (const std::exception& e) {
          util::die(e.what());
        }
      },
      "index.load.*bad magic");
}

}  // namespace
