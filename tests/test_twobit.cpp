// 2-bit codec tests: round trips, ambiguity tracking, word-boundary edges.
#include <gtest/gtest.h>

#include <string>

#include "genome/twobit.hpp"
#include "util/rng.hpp"

namespace {

using genome::twobit_seq;

TEST(TwoBit, EncodeDecodeSimple) {
  const std::string seq = "ACGTACGT";
  auto packed = twobit_seq::encode(seq);
  EXPECT_EQ(packed.size(), 8u);
  EXPECT_EQ(packed.decode(), seq);
}

TEST(TwoBit, AmbiguousBasesDecodeToN) {
  auto packed = twobit_seq::encode("ACNRT");
  EXPECT_EQ(packed.decode(), "ACNNT");  // R is ambiguous too
  EXPECT_FALSE(packed.is_ambiguous(0));
  EXPECT_TRUE(packed.is_ambiguous(2));
  EXPECT_TRUE(packed.is_ambiguous(3));
  EXPECT_FALSE(packed.is_ambiguous(4));
}

TEST(TwoBit, At) {
  auto packed = twobit_seq::encode("GATTACA");
  EXPECT_EQ(packed.at(0), 'G');
  EXPECT_EQ(packed.at(3), 'T');
  EXPECT_EQ(packed.at(6), 'A');
}

TEST(TwoBit, PackedSizeIsQuarter) {
  auto packed = twobit_seq::encode(std::string(1000, 'A'));
  EXPECT_EQ(packed.packed_bytes(), 250u);
}

TEST(TwoBit, EmptySequence) {
  auto packed = twobit_seq::encode("");
  EXPECT_EQ(packed.size(), 0u);
  EXPECT_EQ(packed.decode(), "");
}

TEST(TwoBit, NonMultipleOfFourLength) {
  for (int len = 1; len <= 9; ++len) {
    std::string s;
    for (int i = 0; i < len; ++i) s += "ACGT"[i % 4];
    EXPECT_EQ(twobit_seq::encode(s).decode(), s) << len;
  }
}

TEST(TwoBitProperty, RandomRoundTrip) {
  util::rng rng(31);
  const std::string alphabet = "ACGTN";
  for (int trial = 0; trial < 30; ++trial) {
    std::string s;
    const auto len = rng.next_below(300);
    for (util::u64 i = 0; i < len; ++i) s += alphabet[rng.next_below(5)];
    EXPECT_EQ(twobit_seq::encode(s).decode(), s);
  }
}

TEST(TwoBit, RangeAmbiguityDetection) {
  std::string s(200, 'A');
  s[100] = 'N';
  auto packed = twobit_seq::encode(s);
  EXPECT_FALSE(packed.range_has_ambiguity(0, 100));
  EXPECT_TRUE(packed.range_has_ambiguity(0, 101));
  EXPECT_TRUE(packed.range_has_ambiguity(100, 1));
  EXPECT_FALSE(packed.range_has_ambiguity(101, 99));
  EXPECT_TRUE(packed.range_has_ambiguity(95, 10));
}

TEST(TwoBit, RangeAmbiguityAtWordBoundaries) {
  // Ns at positions 63, 64, 127 exercise the 64-bit word edges.
  std::string s(192, 'C');
  s[63] = s[64] = s[127] = 'N';
  auto packed = twobit_seq::encode(s);
  EXPECT_TRUE(packed.range_has_ambiguity(63, 1));
  EXPECT_TRUE(packed.range_has_ambiguity(64, 1));
  EXPECT_TRUE(packed.range_has_ambiguity(127, 1));
  EXPECT_FALSE(packed.range_has_ambiguity(0, 63));
  EXPECT_FALSE(packed.range_has_ambiguity(65, 62));
  EXPECT_FALSE(packed.range_has_ambiguity(128, 64));
  EXPECT_TRUE(packed.range_has_ambiguity(0, 192));
}

TEST(TwoBit, RangeSpanningMultipleWords) {
  std::string s(300, 'G');
  s[250] = 'N';
  auto packed = twobit_seq::encode(s);
  EXPECT_TRUE(packed.range_has_ambiguity(10, 280));
  EXPECT_FALSE(packed.range_has_ambiguity(10, 240));
}

}  // namespace
