// Flight-recorder suite: the always-on postmortem ring. Covers the arming
// refcount (disarmed probes record nothing; nested scopes restore state),
// armed-but-untraced capture (the ring buffers serving-path events with no
// run_scope active), and the acceptance bar — an injected terminal batch
// failure (fault site serve.batch exhausting every dispatch attempt) dumps a
// parseable postmortem JSON that names the fault site, carries the buffered
// events, and embeds a metrics snapshot.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/index.hpp"
#include "fault/fault.hpp"
#include "genome/synth.hpp"
#include "json_compat.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/common.hpp"

namespace {

using util::u64;
using util::usize;

constexpr const char* kPattern = "NNNNNNNNNNNNNNNNNNNNNGG";

genome::genome_t flight_genome(u64 seed) {
  genome::synth_params p;
  p.assembly = "flight-test";
  p.chromosomes = {{"chrA", 20000}};
  p.seed = seed;
  return genome::generate(p);
}

/// Self-cleaning scratch directory for postmortem dumps.
struct temp_dir {
  std::filesystem::path path;
  explicit temp_dir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           (tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~temp_dir() { std::filesystem::remove_all(path); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct flight_fixture {
  genome::genome_t g;
  cof::genome_index idx;
  std::string guide;

  explicit flight_fixture(u64 seed) : g(flight_genome(seed)) {
    cof::search_config cfg;
    cfg.pattern = kPattern;
    const std::string core = g.chroms[0].seq.substr(512, 20);
    guide = core + "NNN";
    genome::plant_sites(g, core + "NGG", cfg.pattern, 6, 2, seed + 3);
    cof::engine_options bopt;
    bopt.backend = cof::backend_kind::sycl;
    bopt.max_chunk = 8192;
    idx = cof::build_index(g, cfg.pattern, bopt);
  }

  cof::serve::server_options server_options() const {
    cof::serve::server_options sopt;
    sopt.engine.backend = cof::backend_kind::sycl;
    sopt.engine.max_chunk = 8192;
    return sopt;
  }
};

// --- arming semantics --------------------------------------------------------

/// Disarmed and untraced, record() must be a no-op: the ring stays empty.
TEST(Flight, DisarmedProbesRecordNothing) {
  obs::flight::clear();
  ASSERT_FALSE(obs::flight::armed());
  { obs::span sp("flight.noop", "test"); }
  obs::counter_track("flight.noop.count", 1);
  EXPECT_EQ(obs::flight::buffered(), 0u);
}

/// Armed with NO run_scope active, the same probes land in the flight ring —
/// the recorder captures a crash context even when tracing is off.
TEST(Flight, ArmedCapturesWithoutAnActiveTrace) {
  obs::flight::clear();
  obs::flight::scope armed;
  ASSERT_TRUE(obs::flight::armed());
  { obs::span sp("flight.captured", "test"); }
  obs::counter_track("flight.captured.count", 2);
  EXPECT_GE(obs::flight::buffered(), 2u);
  obs::flight::clear();
}

/// The arm refcount nests: inner scopes do not disarm the outer one, and
/// destruction unwinds back to disarmed.
TEST(Flight, ArmRefcountNests) {
  ASSERT_FALSE(obs::flight::armed());
  {
    obs::flight::scope outer;
    EXPECT_TRUE(obs::flight::armed());
    {
      obs::flight::scope inner;
      EXPECT_TRUE(obs::flight::armed());
      obs::flight::scope off(false);  // a disabled scope must not count
      EXPECT_TRUE(obs::flight::armed());
    }
    EXPECT_TRUE(obs::flight::armed()) << "inner scope disarmed the outer";
  }
  EXPECT_FALSE(obs::flight::armed());
  obs::flight::clear();
}

// --- postmortem dump ---------------------------------------------------------

/// The acceptance bar: with serve.batch faults injected on EVERY dispatch
/// attempt, the batch fails terminally, and the server's armed flight
/// recorder dumps a postmortem naming the fault site. The dump parses, the
/// reason says the batch exhausted its attempts, the buffered serving-path
/// events are present, and the metrics snapshot rode along.
TEST(Flight, TerminalBatchFailureDumpsParseablePostmortem) {
  flight_fixture fx(601);
  temp_dir tmp("cof_flight");
  obs::flight::clear();
  const u64 dumps_before = obs::flight::dump_count();

  cof::serve::server_options sopt = fx.server_options();
  sopt.postmortem_dir = tmp.path.string();
  cof::serve::server srv(fx.idx, sopt);
  // Warm one request through so the flight ring holds real serving spans.
  ASSERT_FALSE(srv.submit(fx.guide, 2).get().records.empty());

  {
    fault::scope guard("serve.batch=always");
    auto fut = srv.submit(fx.guide, 2);
    EXPECT_THROW((void)fut.get(), fault::injected_error);
  }
  srv.shutdown();

  EXPECT_EQ(obs::flight::dump_count(), dumps_before + 1);
  const std::string dump = read_file(obs::flight::dump_path());
  ASSERT_FALSE(dump.empty()) << "no postmortem at " << obs::flight::dump_path();

  const testjson::jvalue doc = testjson::parse_json(dump);
  const testjson::jvalue& pm = doc.at("postmortem");
  EXPECT_EQ(pm.at("site").str, "serve.batch");
  EXPECT_NE(pm.at("reason").str.find("exhausted"), std::string::npos)
      << "reason: " << pm.at("reason").str;
  EXPECT_GT(pm.at("pid").num, 0.0);
  EXPECT_GT(pm.at("dumped_at_ns").num, 0.0);
  ASSERT_FALSE(doc.at("events").arr.empty()) << "flight ring dumped empty";
  bool saw_serve_event = false;
  for (const auto& ev : doc.at("events").arr) {
    if (ev.has("name") && ev.at("name").str.rfind("serve.", 0) == 0) {
      saw_serve_event = true;
      break;
    }
  }
  EXPECT_TRUE(saw_serve_event) << "no serving-path event in the ring";
  EXPECT_TRUE(doc.at("metrics").has("counters"))
      << "metrics snapshot missing from the postmortem";
  obs::flight::clear();
}

/// A recovered batch (fault fires once, retry succeeds) must NOT dump — the
/// postmortem is reserved for terminal failures.
TEST(Flight, RecoveredBatchDoesNotDump) {
  flight_fixture fx(602);
  temp_dir tmp("cof_flight_ok");
  obs::flight::clear();
  const u64 dumps_before = obs::flight::dump_count();

  cof::serve::server_options sopt = fx.server_options();
  sopt.postmortem_dir = tmp.path.string();
  cof::serve::server srv(fx.idx, sopt);
  {
    fault::scope guard("serve.batch=hit:1");
    EXPECT_FALSE(srv.submit(fx.guide, 2).get().records.empty());
  }
  srv.shutdown();
  EXPECT_EQ(obs::flight::dump_count(), dumps_before);
  obs::flight::clear();
}

}  // namespace
