// Unit + property tests for the ND-range executor: coordinates, barriers,
// local memory, validation.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <atomic>
#include <numeric>
#include <vector>

#include "xpu/device.hpp"

namespace {

using xpu::launch_config;
using xpu::xitem;

xpu::device& dev() {
  static xpu::device d("test-exec", 2);
  return d;
}

TEST(Executor, GlobalIdsCoverRange1D) {
  launch_config cfg;
  cfg.global[0] = 1000;
  cfg.local[0] = 10;
  std::vector<std::atomic<int>> hits(1000);
  dev().run(cfg, [&](xitem& it) { hits[it.get_global_id(0)].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Executor, CoordinateIdentities3D) {
  launch_config cfg;
  cfg.dims = 3;
  cfg.global[0] = 8;
  cfg.global[1] = 6;
  cfg.global[2] = 4;
  cfg.local[0] = 4;
  cfg.local[1] = 3;
  cfg.local[2] = 2;
  std::atomic<int> bad{0};
  dev().run(cfg, [&](xitem& it) {
    for (unsigned d = 0; d < 3; ++d) {
      if (it.get_global_id(d) !=
          it.get_group(d) * it.get_local_range(d) + it.get_local_id(d)) {
        bad.fetch_add(1);
      }
      if (it.get_local_id(d) >= it.get_local_range(d)) bad.fetch_add(1);
      if (it.get_group(d) >= it.get_group_range(d)) bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Executor, LinearIdsAreBijective) {
  launch_config cfg;
  cfg.dims = 2;
  cfg.global[0] = 16;
  cfg.global[1] = 8;
  cfg.local[0] = 4;
  cfg.local[1] = 4;
  std::vector<std::atomic<int>> hits(16 * 8);
  dev().run(cfg, [&](xitem& it) { hits[it.get_global_linear_id()].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Executor, BarrierMakesPeerWritesVisible) {
  launch_config cfg;
  cfg.global[0] = 512;
  cfg.local[0] = 32;
  cfg.local_mem_bytes = 32 * sizeof(int);
  cfg.uses_barrier = true;
  std::atomic<int> bad{0};
  dev().run(cfg, [&](xitem& it) {
    int* tile = reinterpret_cast<int*>(it.local_mem_base());
    const auto li = it.get_local_id(0);
    tile[li] = static_cast<int>(it.get_global_id(0));
    it.barrier();
    // every peer's write must be visible
    const auto peer = (li + 7) % it.get_local_range(0);
    const int expect = static_cast<int>(it.get_group(0) * it.get_local_range(0) + peer);
    if (tile[peer] != expect) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Executor, MultipleBarrierRounds) {
  launch_config cfg;
  cfg.global[0] = 64;
  cfg.local[0] = 64;
  cfg.local_mem_bytes = 64 * sizeof(int);
  cfg.uses_barrier = true;
  // Parallel tree reduction with log2(64)=6 barrier rounds.
  int result = -1;
  dev().run(cfg, [&](xitem& it) {
    int* tile = reinterpret_cast<int*>(it.local_mem_base());
    const auto li = it.get_local_id(0);
    tile[li] = 1;
    it.barrier();
    for (util::usize stride = 32; stride > 0; stride /= 2) {
      if (li < stride) tile[li] += tile[li + stride];
      it.barrier();
    }
    if (li == 0) result = tile[0];
  });
  EXPECT_EQ(result, 64);
}

TEST(Executor, SubsetOfItemsWritingBeforeBarrier) {
  // The cas-offinder pattern: only work-item 0 populates local memory.
  launch_config cfg;
  cfg.global[0] = 256;
  cfg.local[0] = 64;
  cfg.local_mem_bytes = 64;
  cfg.uses_barrier = true;
  std::atomic<int> bad{0};
  dev().run(cfg, [&](xitem& it) {
    char* tile = it.local_mem_base();
    if (it.get_local_id(0) == 0) {
      for (util::usize k = 0; k < 64; ++k) tile[k] = static_cast<char>(k);
    }
    it.barrier();
    if (tile[it.get_local_id(0)] != static_cast<char>(it.get_local_id(0))) {
      bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ExecutorDeath, NonUniformBarrierDetected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        xpu::device d("death", 1);
        launch_config cfg;
        cfg.global[0] = 4;
        cfg.local[0] = 4;
        cfg.uses_barrier = true;
        d.run(cfg, [&](xitem& it) {
          if (it.get_local_id(0) < 2) it.barrier();  // divergent barrier
        });
      },
      "non-uniform barrier");
}

TEST(ExecutorDeath, BarrierWithoutDeclarationAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        xpu::device d("death2", 1);
        launch_config cfg;
        cfg.global[0] = 4;
        cfg.local[0] = 4;
        cfg.uses_barrier = false;
        d.run(cfg, [&](xitem& it) { it.barrier(); });
      },
      "uses_barrier");
}

TEST(ExecutorDeath, LocalMustDivideGlobal) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        xpu::device d("death3", 1);
        launch_config cfg;
        cfg.global[0] = 10;
        cfg.local[0] = 3;
        d.run(cfg, [&](xitem&) {});
      },
      "divide");
}

TEST(Executor, LaunchStatsCountGroupsAndItems) {
  launch_config cfg;
  cfg.global[0] = 128;
  cfg.local[0] = 32;
  auto stats = dev().run(cfg, [&](xitem&) {});
  EXPECT_EQ(stats.work_items, 128u);
  EXPECT_EQ(stats.groups, 4u);
  EXPECT_GT(stats.wall_nanos, 0u);
}

TEST(Executor, DeviceAggregatesKernelStats) {
  xpu::device d("agg", 1);
  launch_config cfg;
  cfg.global[0] = 64;
  cfg.local[0] = 8;
  cfg.name = "k1";
  d.run(cfg, [&](xitem&) {});
  d.run(cfg, [&](xitem&) {});
  auto ks = d.kernels();
  ASSERT_TRUE(ks.count("k1"));
  EXPECT_EQ(ks["k1"].launches, 2u);
  EXPECT_EQ(ks["k1"].work_items, 128u);
  d.reset_stats();
  EXPECT_TRUE(d.kernels().empty());
}

TEST(Executor, FiberAndFastPathAgree) {
  // The same data-parallel kernel must produce identical output on both
  // group schedulers.
  launch_config cfg;
  cfg.global[0] = 4096;
  cfg.local[0] = 64;
  std::vector<int> a(4096), b(4096);
  auto body = [](xitem& it, std::vector<int>& out) {
    out[it.get_global_id(0)] =
        static_cast<int>(it.get_global_id(0) * 3 + it.get_group(0));
  };
  cfg.uses_barrier = false;
  dev().run(cfg, [&](xitem& it) { body(it, a); });
  cfg.uses_barrier = true;
  dev().run(cfg, [&](xitem& it) { body(it, b); });
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// two-phase (single_leading_barrier) fast path
// ---------------------------------------------------------------------------

TEST(TwoPhase, MatchesFiberPathForCooperatingKernel) {
  // The cas-offinder shape: work-item 0 populates local memory, one leading
  // barrier, then every item reads its slot. A cooperating kernel branches
  // on cof_phase() and must produce identical output on both schedulers.
  launch_config cfg;
  cfg.global[0] = 1024;
  cfg.local[0] = 64;
  cfg.local_mem_bytes = 64;
  cfg.uses_barrier = true;
  auto body = [](xitem& it, std::vector<int>& out) {
    char* tile = it.local_mem_base();
    const xpu::exec_phase ph = it.cof_phase();
    if (ph != xpu::exec_phase::post_fetch) {
      if (it.get_local_id(0) == 0) {
        for (util::usize k = 0; k < 64; ++k) {
          tile[k] = static_cast<char>(k + it.get_group(0));
        }
      }
      if (ph == xpu::exec_phase::fetch_only) return;
      it.barrier();
    }
    out[it.get_global_id(0)] = tile[it.get_local_id(0)];
  };
  std::vector<int> fib(1024, -1), two(1024, -2);
  cfg.single_leading_barrier = false;
  dev().run(cfg, [&](xitem& it) { body(it, fib); });
  cfg.single_leading_barrier = true;
  dev().run(cfg, [&](xitem& it) { body(it, two); });
  EXPECT_EQ(two, fib);
}

TEST(TwoPhase, FullPhaseReportedOnFiberAndFastPaths) {
  // Kernels not launched under single_leading_barrier always observe the
  // `full` phase, on both the fiber scheduler and the no-barrier fast loop.
  for (const bool barrier : {false, true}) {
    launch_config cfg;
    cfg.global[0] = 64;
    cfg.local[0] = 16;
    cfg.uses_barrier = barrier;
    std::atomic<int> bad{0};
    dev().run(cfg, [&](xitem& it) {
      if (it.cof_phase() != xpu::exec_phase::full) bad.fetch_add(1);
    });
    EXPECT_EQ(bad.load(), 0) << "uses_barrier=" << barrier;
  }
}

TEST(TwoPhaseDeath, NonCooperatingBarrierDetected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        xpu::device d("death4", 1);
        launch_config cfg;
        cfg.global[0] = 4;
        cfg.local[0] = 4;
        cfg.uses_barrier = true;
        cfg.single_leading_barrier = true;
        // Ignores cof_phase() and hits the barrier in both phases.
        d.run(cfg, [&](xitem& it) { it.barrier(); });
      },
      "two-phase");
}

// Property sweep: barrier correctness across group geometries.
class BarrierGeometry : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BarrierGeometry, GroupReverseIsInvolution) {
  const auto [global, local] = GetParam();
  launch_config cfg;
  cfg.global[0] = static_cast<util::usize>(global);
  cfg.local[0] = static_cast<util::usize>(local);
  cfg.local_mem_bytes = static_cast<util::usize>(local) * sizeof(int);
  cfg.uses_barrier = true;
  std::vector<int> out(cfg.global[0]);
  dev().run(cfg, [&](xitem& it) {
    int* tile = reinterpret_cast<int*>(it.local_mem_base());
    const auto li = it.get_local_id(0);
    tile[li] = static_cast<int>(it.get_global_id(0));
    it.barrier();
    out[it.get_global_id(0)] = tile[it.get_local_range(0) - 1 - li];
  });
  for (util::usize i = 0; i < out.size(); ++i) {
    const util::usize group = i / cfg.local[0];
    const util::usize li = i % cfg.local[0];
    EXPECT_EQ(out[i], static_cast<int>(group * cfg.local[0] +
                                       (cfg.local[0] - 1 - li)));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, BarrierGeometry,
                         ::testing::Values(std::pair{8, 1}, std::pair{8, 8},
                                           std::pair{96, 3}, std::pair{256, 64},
                                           std::pair{512, 256},
                                           std::pair{1024, 128}));

}  // namespace
