// FASTA parser/writer tests, including directory loading.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "genome/fasta.hpp"

namespace {

namespace fs = std::filesystem;

TEST(Fasta, ParseSingleRecord) {
  auto recs = genome::parse_fasta(">chr1 human chromosome 1\nACGT\nacgt\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].name, "chr1");  // description dropped
  EXPECT_EQ(recs[0].seq, "ACGTACGT");  // wrapped + upper-cased
}

TEST(Fasta, ParseMultiRecord) {
  auto recs = genome::parse_fasta(">a\nAC\n>b\nGT\nNN\n>c\nTTTT");
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[1].name, "b");
  EXPECT_EQ(recs[1].seq, "GTNN");
  EXPECT_EQ(recs[2].seq, "TTTT");
}

TEST(Fasta, SkipsCommentsAndBlankLines) {
  auto recs = genome::parse_fasta("; legacy comment\n>x\n\nAC\n;mid\nGT\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq, "ACGT");
}

TEST(Fasta, CrlfLineEndings) {
  auto recs = genome::parse_fasta(">x\r\nACGT\r\nAC\r\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq, "ACGTAC");
}

TEST(Fasta, EmptySequenceRecordAllowed) {
  auto recs = genome::parse_fasta(">empty\n>full\nAC\n");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_TRUE(recs[0].seq.empty());
}

TEST(FastaDeath, SequenceBeforeHeader) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)genome::parse_fasta("ACGT\n"), "before any");
}

TEST(Fasta, WriteWrapsLines) {
  std::vector<genome::chromosome> recs{{"x", "AAAACCCCGGGG"}};
  EXPECT_EQ(genome::write_fasta(recs, 4), ">x\nAAAA\nCCCC\nGGGG\n");
  EXPECT_EQ(genome::write_fasta(recs, 100), ">x\nAAAACCCCGGGG\n");
}

TEST(FastaProperty, WriteParseRoundTrip) {
  std::vector<genome::chromosome> recs{
      {"chr1", "ACGTACGTACGTNNNNACGT"}, {"chr2", "G"}, {"chrM", std::string(257, 'T')}};
  for (util::usize width : {1u, 7u, 60u, 1000u}) {
    auto parsed = genome::parse_fasta(genome::write_fasta(recs, width));
    ASSERT_EQ(parsed.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(parsed[i].name, recs[i].name);
      EXPECT_EQ(parsed[i].seq, recs[i].seq);
    }
  }
}

TEST(Fasta, NonNBaseCount) {
  genome::genome_t g;
  g.chroms = {{"a", "ACGTN"}, {"b", "NNRYA"}};
  EXPECT_EQ(g.total_bases(), 10u);
  EXPECT_EQ(g.non_n_bases(), 5u);  // R/Y are not concrete
}

struct temp_dir {
  fs::path path;
  temp_dir() {
    path = fs::temp_directory_path() / ("cof_fasta_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~temp_dir() { fs::remove_all(path); }
};

TEST(Fasta, LoadGenomeFromFile) {
  temp_dir dir;
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), {{"chrZ", "ACGTACGT"}});
  auto g = genome::load_genome(file.string());
  ASSERT_EQ(g.chroms.size(), 1u);
  EXPECT_EQ(g.chroms[0].name, "chrZ");
  EXPECT_EQ(g.chroms[0].seq, "ACGTACGT");
}

TEST(Fasta, LoadGenomeFromDirectorySortedByFile) {
  temp_dir dir;
  genome::write_fasta_file((dir.path / "b_chr2.fa").string(), {{"chr2", "GG"}});
  genome::write_fasta_file((dir.path / "a_chr1.fasta").string(), {{"chr1", "AA"}});
  std::ofstream(dir.path / "ignored.txt") << "not fasta";
  auto g = genome::load_genome(dir.path.string());
  ASSERT_EQ(g.chroms.size(), 2u);
  EXPECT_EQ(g.chroms[0].name, "chr1");  // file-name order
  EXPECT_EQ(g.chroms[1].name, "chr2");
}

TEST(FastaDeath, MissingFileDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)genome::read_fasta_file("/nonexistent/p.fa"), "cannot open");
}

TEST(FastaDeath, EmptyDirectoryDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  temp_dir dir;
  EXPECT_DEATH((void)genome::load_genome(dir.path.string()), "no FASTA files");
}

}  // namespace
