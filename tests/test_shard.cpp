// Multi-device sharding suite: N simulated devices behind the shard layer
// must produce byte-identical records for ANY device count — across queue
// counts, all four device facades, both shard policies, and both the cold
// (streamed) and warm (index) paths — plus unit coverage of the
// device_set/shard_scheduler primitives and the per-device metrics the
// engine reports for sharded runs.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/engine_stream.hpp"
#include "core/index.hpp"
#include "core/shard.hpp"
#include "genome/fasta.hpp"
#include "genome/synth.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

struct temp_dir {
  fs::path path;
  temp_dir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cof_shard_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~temp_dir() { fs::remove_all(path); }
};

genome::genome_t shard_genome(util::u64 seed) {
  genome::synth_params p;
  p.assembly = "shard-test";
  p.chromosomes = {{"chrA", 40000}, {"chrB", 15000}};
  p.seed = seed;
  return genome::generate(p);
}

struct stream_case {
  cof::search_config cfg;
  std::string file;
};

/// Synth genome with planted off-target sites written to FASTA — every
/// sharded run has records to disagree on.
stream_case make_case(const temp_dir& dir, util::u64 seed, util::usize planted) {
  stream_case c;
  auto g = shard_genome(seed);
  c.cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = c.cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, c.cfg.pattern, planted, 2, seed + 1);
  c.file = (dir.path / "g.fa").string();
  genome::write_fasta_file(c.file, g.chroms);
  return c;
}

// --- shard primitives --------------------------------------------------------

TEST(ShardPolicy, ParseAndName) {
  EXPECT_EQ(cof::parse_shard_policy("round-robin"),
            cof::shard_policy::round_robin);
  EXPECT_EQ(cof::parse_shard_policy("rr"), cof::shard_policy::round_robin);
  EXPECT_EQ(cof::parse_shard_policy("least-loaded"),
            cof::shard_policy::least_loaded);
  EXPECT_EQ(cof::parse_shard_policy("ll"), cof::shard_policy::least_loaded);
  EXPECT_STREQ(cof::shard_policy_name(cof::shard_policy::round_robin),
               "round-robin");
  EXPECT_STREQ(cof::shard_policy_name(cof::shard_policy::least_loaded),
               "least-loaded");
}

TEST(DeviceSet, SingleDeviceIsTheGlobalSimulator) {
  cof::shard::device_set one(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(&one.at(0), &xpu::device::simulator());
  EXPECT_TRUE(one.alive(0));
  EXPECT_EQ(one.alive_count(), 1u);
}

TEST(DeviceSet, OwnedDevicesLivenessAndPick) {
  cof::shard::device_set devs(3);
  ASSERT_EQ(devs.size(), 3u);
  EXPECT_EQ(devs.name(0), "xpu0");
  EXPECT_EQ(devs.name(2), "xpu2");
  for (util::usize d = 0; d < 3; ++d) EXPECT_NE(&devs.at(d), &xpu::device::simulator());
  EXPECT_NE(&devs.at(0), &devs.at(1));

  EXPECT_EQ(devs.pick_alive(1), 1u);
  EXPECT_EQ(devs.mark_failed(1), 2u);
  EXPECT_FALSE(devs.alive(1));
  EXPECT_EQ(devs.alive_count(), 2u);
  EXPECT_EQ(devs.pick_alive(1), 0u);  // hint dead: lowest alive ordinal
  EXPECT_EQ(devs.mark_failed(1), 2u);  // idempotent
  EXPECT_EQ(devs.mark_failed(0), 1u);
  EXPECT_EQ(devs.pick_alive(0), 2u);
}

TEST(ShardScheduler, RoundRobinCyclesAllAlive) {
  cof::shard::device_set devs(3);
  cof::shard::shard_scheduler sched(cof::shard_policy::round_robin, devs);
  const std::vector<util::usize> loads(3, 0);
  EXPECT_EQ(sched.assign(loads), 0u);
  EXPECT_EQ(sched.assign(loads), 1u);
  EXPECT_EQ(sched.assign(loads), 2u);
  EXPECT_EQ(sched.assign(loads), 0u);
  devs.mark_failed(1);
  EXPECT_EQ(sched.assign(loads), 2u);  // 1 is skipped
  EXPECT_EQ(sched.assign(loads), 0u);
  EXPECT_EQ(sched.assigned(0), 3u);
  EXPECT_EQ(sched.assigned(1), 1u);
  EXPECT_EQ(sched.assigned(2), 2u);
}

TEST(ShardScheduler, LeastLoadedPicksMinimumTiesLowOrdinal) {
  cof::shard::device_set devs(3);
  cof::shard::shard_scheduler sched(cof::shard_policy::least_loaded, devs);
  EXPECT_EQ(sched.assign({5, 2, 9}), 1u);
  EXPECT_EQ(sched.assign({4, 4, 9}), 0u);  // tie: lower ordinal
  devs.mark_failed(0);
  EXPECT_EQ(sched.assign({0, 7, 3}), 2u);  // dead minimum ignored
}

TEST(ShardScheduler, NoAliveDeviceReturnsSizeSentinel) {
  cof::shard::device_set devs(2);
  cof::shard::shard_scheduler sched(cof::shard_policy::round_robin, devs);
  devs.mark_failed(0);
  devs.mark_failed(1);
  const std::vector<util::usize> loads(2, 0);
  EXPECT_EQ(sched.assign(loads), devs.size());
}

// --- cold-path byte-identity -------------------------------------------------

/// devices {1,2,4} × queues {1,2} on each facade: every sharded streamed run
/// must reproduce the serial reference byte-for-byte, and the per-device
/// accounting must cover every chunk exactly once.
class ShardSweep : public ::testing::TestWithParam<cof::backend_kind> {};

TEST_P(ShardSweep, ByteIdenticalForAnyDeviceCount) {
  temp_dir dir;
  const auto c = make_case(dir, 301, 6);
  const auto g = genome::load_genome(c.file);
  const auto reference =
      cof::run_search(c.cfg, g, {.backend = cof::backend_kind::serial});
  ASSERT_FALSE(reference.records.empty());

  for (const util::usize devices : {1u, 2u, 4u}) {
    for (const util::usize queues : {1u, 2u}) {
      cof::engine_options opt{.backend = GetParam(), .max_chunk = 5000};
      opt.num_queues = queues;
      opt.num_devices = devices;
      const auto streamed = cof::run_search_streaming(c.cfg, c.file, opt);
      EXPECT_EQ(streamed.records, reference.records)
          << "devices=" << devices << " queues=" << queues;
      ASSERT_EQ(streamed.device_shards.size(), devices)
          << "devices=" << devices << " queues=" << queues;
      util::usize shard_chunks = 0;
      for (const auto& ds : streamed.device_shards) {
        shard_chunks += ds.chunks;
        EXPECT_FALSE(ds.failed);
      }
      EXPECT_EQ(shard_chunks, streamed.metrics.chunks)
          << "devices=" << devices << " queues=" << queues;
      if (devices > 1) {
        EXPECT_EQ(streamed.device_shards[0].name, "xpu0");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardSweep,
                         ::testing::Values(cof::backend_kind::opencl,
                                           cof::backend_kind::sycl,
                                           cof::backend_kind::sycl_usm,
                                           cof::backend_kind::sycl_twobit));

/// Both assignment policies converge on the same canonical record stream.
TEST(ShardPolicySweep, LeastLoadedMatchesRoundRobin) {
  temp_dir dir;
  const auto c = make_case(dir, 302, 5);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 4000};
  opt.num_queues = 2;
  opt.num_devices = 3;
  opt.shard = cof::shard_policy::round_robin;
  const auto rr = cof::run_search_streaming(c.cfg, c.file, opt);
  opt.shard = cof::shard_policy::least_loaded;
  const auto ll = cof::run_search_streaming(c.cfg, c.file, opt);
  EXPECT_EQ(rr.records, ll.records);
  EXPECT_EQ(rr.metrics.chunks, ll.metrics.chunks);
}

// --- warm-path byte-identity -------------------------------------------------

/// The warm index path shards its session slots across the device set; the
/// answer must not depend on the device count, cold-built or .cofidx-loaded.
TEST(ShardWarm, IndexQueryByteIdenticalAcrossDeviceCounts) {
  temp_dir dir;
  const auto c = make_case(dir, 303, 6);
  const auto g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 5000};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);
  ASSERT_GT(idx.total_hits(), 0u);
  const std::string path = (dir.path / "g.cofidx").string();
  cof::save_index(path, idx);
  const auto loaded = cof::load_index(path);

  opt.num_queues = 2;
  const auto reference = cof::run_query(idx, c.cfg.queries, opt);
  ASSERT_FALSE(reference.records.empty());
  for (const util::usize devices : {2u, 4u}) {
    cof::engine_options sopt = opt;
    sopt.num_devices = devices;
    const auto warm = cof::run_query(idx, c.cfg.queries, sopt);
    EXPECT_EQ(warm.records, reference.records) << "devices=" << devices;
    const auto from_file = cof::run_query(loaded, c.cfg.queries, sopt);
    EXPECT_EQ(from_file.records, reference.records) << "devices=" << devices;
  }
}

/// A sharded session spreads slots and resident bytes over every device and
/// reports them per device.
TEST(ShardWarm, SessionResidencySpreadsAcrossDevices) {
  temp_dir dir;
  const auto c = make_case(dir, 304, 5);
  const auto g = genome::load_genome(c.file);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 4000};
  const auto idx = cof::build_index(g, c.cfg.pattern, opt);
  ASSERT_GE(idx.chunks.size(), 4u);

  opt.num_queues = 2;
  opt.num_devices = 2;
  cof::index_query_session session(idx, opt);
  const auto out = session.query(c.cfg.queries);
  ASSERT_FALSE(out.records.empty());

  const auto devs = session.device_residency();
  ASSERT_EQ(devs.size(), 2u);
  EXPECT_EQ(devs[0].name, "xpu0");
  EXPECT_EQ(devs[1].name, "xpu1");
  util::usize slots = 0;
  util::u64 chunks = 0;
  for (const auto& d : devs) {
    EXPECT_TRUE(d.alive);
    EXPECT_GT(d.slots, 0u);
    EXPECT_GT(d.resident_bytes, 0u);
    slots += d.slots;
    chunks += d.chunks;
  }
  EXPECT_EQ(slots, 4u);  // num_queues per device
  EXPECT_GT(chunks, 0u);
  EXPECT_EQ(session.failed_devices(), 0u);
  EXPECT_EQ(session.device_migrations(), 0u);
  // The per-device bytes snapshot must agree with the session-wide one.
  util::usize bytes = 0;
  for (const auto& d : devs) bytes += d.resident_bytes;
  EXPECT_EQ(bytes, session.resident_bytes());
}

// --- randomized soak ---------------------------------------------------------

/// Randomized multi-guide soak: random genomes, guides sampled off the
/// forward strand, random device/queue/policy mix — every sharded run must
/// match its own single-device reference exactly.
class ShardSoak : public ::testing::TestWithParam<int> {};

TEST_P(ShardSoak, RandomConfigsMatchSingleDevice) {
  util::rng rng(4100 + static_cast<util::u64>(GetParam()));
  temp_dir dir;
  auto g = shard_genome(4200 + static_cast<util::u64>(GetParam()));
  auto cfg = cof::parse_input(cof::example_input("<soak>"));
  // Guides sampled from the genome itself (forward strand, PAM-adjacent
  // where the sequence allows) so mismatch thresholds produce rich hits.
  cfg.queries.clear();
  const auto& seq = g.chroms[0].seq;
  const util::usize glen = cfg.pattern.size() - 3;
  const auto nguides = 2 + rng.next_below(4);
  for (util::u64 q = 0; q < nguides; ++q) {
    const util::usize at = 500 + rng.next_below(seq.size() - glen - 600);
    cof::query_spec qs;
    qs.seq = seq.substr(at, glen) + "NNN";
    qs.max_mismatches = static_cast<cof::u16>(2 + rng.next_below(4));
    cfg.queries.push_back(std::move(qs));
  }
  const auto file = dir.path / "soak.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  cof::engine_options opt{.backend = cof::backend_kind::sycl};
  opt.max_chunk = 3000 + rng.next_below(6000);
  opt.num_queues = 1 + rng.next_below(3);
  opt.shard = rng.next_bool(0.5) ? cof::shard_policy::least_loaded
                                 : cof::shard_policy::round_robin;
  cof::engine_options ref_opt = opt;
  ref_opt.num_devices = 1;
  const auto reference = cof::run_search_streaming(cfg, file.string(), ref_opt);
  opt.num_devices = 2 + rng.next_below(3);
  const auto sharded = cof::run_search_streaming(cfg, file.string(), opt);
  ASSERT_EQ(sharded.records, reference.records)
      << "seed=" << GetParam() << " devices=" << opt.num_devices
      << " queues=" << opt.num_queues << " chunk=" << opt.max_chunk;
  EXPECT_EQ(sharded.streamed_bases, reference.streamed_bases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardSoak, ::testing::Range(1, 7));

}  // namespace
