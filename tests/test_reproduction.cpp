// Reproduction-band regression tests: the paper's headline shapes must keep
// emerging from the measured-events -> device-model path. These guard the
// calibration (EXPERIMENTS.md) against silent regressions — if a change to
// the kernels, counting policy or model moves a band, these fail.
//
// Small scale (1/8192 assemblies) keeps them fast; the bands are scale-
// invariant because events extrapolate linearly.
#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "util/log.hpp"

namespace {

using cv = cof::comparer_variant;

struct repro_fixture {
  bench::dataset hg19 = bench::make_dataset("hg19", 8192);
  bench::dataset hg38 = bench::make_dataset("hg38", 8192);
  bench::measured_run ocl19;
  bench::measured_run sycl19;
  bench::measured_run sycl38;

  repro_fixture() {
    util::set_log_level(util::log_level::warn);
    ocl19 = bench::run_counting(hg19, cof::backend_kind::opencl, cv::base, 0);
    sycl19 = bench::run_counting(hg19, cof::backend_kind::sycl, cv::base, 256);
    sycl38 = bench::run_counting(hg38, cof::backend_kind::sycl, cv::base, 256);
  }

  static repro_fixture& get() {
    static repro_fixture f;
    return f;
  }
};

double elapsed(const bench::dataset& ds, const bench::measured_run& m, cv variant,
               util::u32 wg, const char* gpu) {
  auto in = bench::make_projection(ds, m, variant, wg);
  return gpumodel::project_elapsed(gpumodel::gpu_by_name(gpu), in).total_s;
}

TEST(ReproTable8, AbsoluteElapsedInPaperBallpark) {
  auto& f = repro_fixture::get();
  // Paper: 41-71 s across all cells; require the same order of magnitude.
  for (const char* gpu : {"RVII", "MI60", "MI100"}) {
    const double s = elapsed(f.hg19, f.sycl19, cv::base, 256, gpu);
    EXPECT_GT(s, 25.0) << gpu;
    EXPECT_LT(s, 80.0) << gpu;
  }
}

TEST(ReproTable8, SyclNeverSlowerThanOpenCL) {
  auto& f = repro_fixture::get();
  for (const char* gpu : {"RVII", "MI60", "MI100"}) {
    const double ocl = elapsed(f.hg19, f.ocl19, cv::base, 64, gpu);
    const double sycl = elapsed(f.hg19, f.sycl19, cv::base, 256, gpu);
    const double speedup = ocl / sycl;
    EXPECT_GE(speedup, 1.00) << gpu;   // paper band: 1.00 - 1.20
    EXPECT_LE(speedup, 1.25) << gpu;
  }
}

TEST(ReproTable8, Hg38SlowerThanHg19) {
  auto& f = repro_fixture::get();
  const double s19 = elapsed(f.hg19, f.sycl19, cv::base, 256, "RVII");
  const double s38 = elapsed(f.hg38, f.sycl38, cv::base, 256, "RVII");
  EXPECT_GT(s38, s19);
}

TEST(ReproTable8, Mi100FastestDevice) {
  auto& f = repro_fixture::get();
  const double rvii = elapsed(f.hg19, f.sycl19, cv::base, 256, "RVII");
  const double mi100 = elapsed(f.hg19, f.sycl19, cv::base, 256, "MI100");
  EXPECT_LT(mi100, rvii);
}

TEST(ReproHotspot, ComparerDominatesKernelTime) {
  auto& f = repro_fixture::get();
  auto in = bench::make_projection(f.hg19, f.sycl19, cv::base, 256);
  const auto proj = gpumodel::project_elapsed(gpumodel::gpu_by_name("RVII"), in);
  const double kernel_share = proj.comparer_s / (proj.comparer_s + proj.finder_s);
  EXPECT_GT(kernel_share, 0.95);  // paper: ~98%
  const double elapsed_share = proj.comparer_s / proj.total_s;
  EXPECT_GT(elapsed_share, 0.50);  // paper: 50-80%
  EXPECT_LT(elapsed_share, 0.85);
}

TEST(ReproFig2, CumulativeOptGainInPaperBand) {
  auto& f = repro_fixture::get();
  bench::measured_run runs[5];
  double t[5];
  for (int v = 0; v < 5; ++v) {
    runs[v] = bench::run_counting(f.hg19, cof::backend_kind::sycl,
                                  static_cast<cv>(v), 256);
    auto in = bench::make_projection(f.hg19, runs[v], static_cast<cv>(v), 256);
    t[v] = gpumodel::project_elapsed(gpumodel::gpu_by_name("RVII"), in).comparer_s;
  }
  // Monotone improvement through opt3...
  EXPECT_LT(t[1], t[0]);
  EXPECT_LT(t[2], t[1]);
  EXPECT_LE(t[3], t[2]);
  // ...with a cumulative cut in the paper's 18-30% window...
  const double cut = 1.0 - t[3] / t[0];
  EXPECT_GT(cut, 0.18);
  EXPECT_LT(cut, 0.30);
  // ...and the opt4 occupancy cliff nearly doubles the kernel.
  const double cliff = t[4] / t[3];
  EXPECT_GT(cliff, 1.7);
  EXPECT_LT(cliff, 2.3);
}

TEST(ReproTable9, OptimisedSpeedupInPaperBand) {
  auto& f = repro_fixture::get();
  auto opt3 = bench::run_counting(f.hg19, cof::backend_kind::sycl, cv::opt3, 256);
  for (const char* gpu : {"RVII", "MI60", "MI100"}) {
    const double base_s = elapsed(f.hg19, f.sycl19, cv::base, 256, gpu);
    const double opt_s = elapsed(f.hg19, opt3, cv::opt3, 256, gpu);
    const double speedup = base_s / opt_s;
    EXPECT_GT(speedup, 1.09) << gpu;  // paper band: 1.09 - 1.23
    EXPECT_LT(speedup, 1.30) << gpu;
  }
}

TEST(ReproTable10, ResourceRowsWithinTolerance) {
  const int paper_sgpr[5] = {64, 64, 64, 57, 82};
  const int paper_vgpr[5] = {22, 22, 22, 10, 10};
  const int paper_occ[5] = {10, 10, 10, 10, 9};
  const int paper_code[5] = {6064, 5852, 5408, 4408, 3660};
  for (int v = 0; v < 5; ++v) {
    const auto row = gpumodel::resource_usage(static_cast<cv>(v));
    EXPECT_NEAR(static_cast<int>(row.sgprs), paper_sgpr[v], 2) << v;
    EXPECT_NEAR(static_cast<int>(row.vgprs), paper_vgpr[v], 1) << v;
    EXPECT_EQ(static_cast<int>(row.occupancy), paper_occ[v]) << v;
    EXPECT_NEAR(static_cast<double>(row.code_bytes), paper_code[v],
                0.08 * paper_code[v])
        << v;
  }
}

TEST(ReproScaling, EventsScaleLinearlyAcrossAssemblyScales) {
  // The extrapolation premise: per-base event rates are scale-invariant.
  auto small = bench::make_dataset("hg19", 16384);
  auto large = bench::make_dataset("hg19", 4096);
  auto rs = bench::run_counting(small, cof::backend_kind::sycl, cv::base, 256);
  auto rl = bench::run_counting(large, cof::backend_kind::sycl, cv::base, 256);
  const auto es = rs.profile->get("comparer/base").events;
  const auto el = rl.profile->get("comparer/base").events;
  const double per_base_s = static_cast<double>(es[prof::ev::global_load]) /
                            static_cast<double>(small.g.total_bases());
  const double per_base_l = static_cast<double>(el[prof::ev::global_load]) /
                            static_cast<double>(large.g.total_bases());
  EXPECT_NEAR(per_base_s / per_base_l, 1.0, 0.15);
}

}  // namespace
