// Profiling-layer tests: counters, item-scope flush, profiler reports.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "profile/counters.hpp"
#include "profile/profiler.hpp"

namespace {

using namespace prof;

TEST(Counters, AddAndSnapshot) {
  counters::reset();
  event_counts c;
  c[ev::global_load] = 5;
  c[ev::compare] = 7;
  counters::add_bulk(c);
  counters::add_bulk(c);
  auto snap = counters::snapshot();
  EXPECT_EQ(snap[ev::global_load], 10u);
  EXPECT_EQ(snap[ev::compare], 14u);
  EXPECT_EQ(snap[ev::atomic_op], 0u);
  counters::reset();
  EXPECT_EQ(counters::snapshot()[ev::global_load], 0u);
}

TEST(Counters, ItemScopeFlushesOnDestruction) {
  counters::reset();
  {
    item_scope_counts scope;
    scope.c[ev::local_load] = 3;
    EXPECT_EQ(counters::snapshot()[ev::local_load], 0u);  // not yet flushed
  }
  EXPECT_EQ(counters::snapshot()[ev::local_load], 3u);
  counters::reset();
}

TEST(Counters, ConcurrentAddBulk) {
  counters::reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      event_counts c;
      c[ev::loop_iter] = 1;
      for (int i = 0; i < 1000; ++i) counters::add_bulk(c);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counters::snapshot()[ev::loop_iter], 4000u);
  counters::reset();
}

TEST(EventCounts, Arithmetic) {
  event_counts a, b;
  a[ev::compare] = 3;
  b[ev::compare] = 4;
  b[ev::branch] = 1;
  auto c = a + b;
  EXPECT_EQ(c[ev::compare], 7u);
  EXPECT_EQ(c[ev::branch], 1u);
  a += b;
  EXPECT_EQ(a[ev::compare], 7u);
}

TEST(EventCounts, TotalGlobalBytes) {
  event_counts e;
  e[ev::global_load_bytes] = 100;
  e[ev::global_store_bytes] = 50;
  EXPECT_EQ(e.total_global_bytes(), 150u);
}

TEST(EventCounts, NamesResolve) {
  for (int i = 0; i < kNumEvents; ++i) {
    EXPECT_STRNE(ev_name(static_cast<ev>(i)), "?");
  }
}

TEST(Profiler, RecordAggregates) {
  profiler p;
  event_counts e;
  e[ev::global_load] = 10;
  p.record("k", e, 100);
  p.record("k", e, 50);
  const auto prof = p.get("k");
  EXPECT_EQ(prof.launches, 2u);
  EXPECT_EQ(prof.wall_nanos, 150u);
  EXPECT_EQ(prof.events[ev::global_load], 20u);
}

TEST(Profiler, HotspotShare) {
  profiler p;
  p.record("hot", {}, 980);
  p.record("cold", {}, 20);
  EXPECT_DOUBLE_EQ(p.hotspot_share("hot"), 0.98);
  EXPECT_DOUBLE_EQ(p.hotspot_share("cold"), 0.02);
  EXPECT_DOUBLE_EQ(p.hotspot_share("missing"), 0.0);
  EXPECT_EQ(p.total_kernel_nanos(), 1000u);
}

TEST(Profiler, EmptyProfilerSafe) {
  profiler p;
  EXPECT_EQ(p.total_kernel_nanos(), 0u);
  EXPECT_DOUBLE_EQ(p.hotspot_share("x"), 0.0);
  EXPECT_EQ(p.get("x").launches, 0u);
}

TEST(Profiler, ReportContainsKernelsAndShares) {
  profiler p;
  event_counts e;
  e[ev::global_load_bytes] = 1234;
  p.record("comparer", e, 900);
  p.record("finder", {}, 100);
  const auto report = p.report();
  EXPECT_NE(report.find("comparer"), std::string::npos);
  EXPECT_NE(report.find("finder"), std::string::npos);
  EXPECT_NE(report.find("90.0%"), std::string::npos);
  EXPECT_NE(report.find("1234"), std::string::npos);
}

TEST(Profiler, ModelSecondsAccumulate) {
  profiler p;
  p.add_model_seconds("k", 1.5);
  p.add_model_seconds("k", 0.5);
  EXPECT_DOUBLE_EQ(p.get("k").model_seconds, 2.0);
}

TEST(Profiler, ClearEmpties) {
  profiler p;
  p.record("k", {}, 10);
  p.clear();
  EXPECT_TRUE(p.kernels().empty());
}

}  // namespace
