// Bulge-extension tests: variant enumeration and recovery of sites with
// DNA/RNA bulges.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include "core/bulge.hpp"
#include "genome/iupac.hpp"

namespace {

using namespace cof;

const std::string kPattern = "NNNNNNNNNNNNNNNNNNNNNRG";
const std::string kQuery = "GGCCGACCTGTCGCTGACGCNNN";

TEST(BulgeExpand, NoBulgeYieldsOriginalOnly) {
  auto v = expand_bulges(kPattern, kQuery, {});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].type, bulge_type::none);
  EXPECT_EQ(v[0].query, kQuery);
  EXPECT_EQ(v[0].pattern, kPattern);
}

TEST(BulgeExpand, DnaBulgeLengthensQueryAndPattern) {
  auto v = expand_bulges(kPattern, kQuery, {.dna_bulge = 1});
  ASSERT_GT(v.size(), 1u);
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_EQ(v[i].type, bulge_type::dna);
    EXPECT_EQ(v[i].query.size(), kQuery.size() + 1);
    EXPECT_EQ(v[i].pattern.size(), kPattern.size() + 1);
    EXPECT_EQ(v[i].query.size(), v[i].pattern.size());
  }
  // one variant per interior insertion point
  const util::usize nrun = 21;  // leading N-run of the pattern
  EXPECT_EQ(v.size(), 1 + (nrun - 1));
}

TEST(BulgeExpand, RnaBulgeShortensQuery) {
  auto v = expand_bulges(kPattern, kQuery, {.rna_bulge = 2});
  size_t rna1 = 0, rna2 = 0;
  for (const auto& var : v) {
    if (var.type == bulge_type::rna) {
      EXPECT_EQ(var.query.size(), kQuery.size() - var.size);
      EXPECT_EQ(var.query.size(), var.pattern.size());
      (var.size == 1 ? rna1 : rna2)++;
    }
  }
  EXPECT_GT(rna1, 0u);
  EXPECT_GT(rna2, 0u);
}

TEST(BulgeExpandDeath, RequiresLeadingNRun) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)expand_bulges("ACGT", "ACGT", {.dna_bulge = 1}), "N-run");
}

genome::genome_t background(util::usize len = 3000) {
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(len, 'T')});
  return g;
}

TEST(BulgeSearch, FindsExactSiteViaNoneVariant) {
  auto g = background();
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  g.chroms[0].seq.replace(100, site.size(), site);
  auto recs = bulge_search(kPattern, {kQuery, 3}, {.dna_bulge = 1, .rna_bulge = 1}, g,
                           {.backend = backend_kind::serial});
  bool found = false;
  for (const auto& r : recs) {
    if (r.hit.position == 100 && r.variant.type == bulge_type::none &&
        r.hit.mismatches == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BulgeSearch, FindsDnaBulgeSite) {
  // DNA bulge: the genome carries one EXTRA base inside the guide match.
  auto g = background();
  const std::string guide = kQuery.substr(0, 20);
  std::string site = guide.substr(0, 10) + "A" + guide.substr(10) + "TGG";
  g.chroms[0].seq.replace(200, site.size(), site);
  auto recs = bulge_search(kPattern, {kQuery, 0}, {.dna_bulge = 1}, g,
                           {.backend = backend_kind::serial});
  bool found = false;
  for (const auto& r : recs) {
    if (r.hit.position == 200 && r.variant.type == bulge_type::dna &&
        r.variant.size == 1 && r.hit.mismatches == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BulgeSearch, FindsRnaBulgeSite) {
  // RNA bulge: the genome is MISSING one guide base.
  auto g = background();
  const std::string guide = kQuery.substr(0, 20);
  std::string site = guide.substr(0, 8) + guide.substr(9) + "TGG";  // drop base 8
  g.chroms[0].seq.replace(400, site.size(), site);
  auto recs = bulge_search(kPattern, {kQuery, 0}, {.rna_bulge = 1}, g,
                           {.backend = backend_kind::serial});
  bool found = false;
  for (const auto& r : recs) {
    if (r.hit.position == 400 && r.variant.type == bulge_type::rna &&
        r.variant.size == 1 && r.hit.mismatches == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BulgeSearch, ExactSiteNotReattributedToBulge) {
  // A perfect bulge-free site must be reported by the none-variant even when
  // bulge variants could also align it (smallest bulge wins the dedup).
  auto g = background();
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  g.chroms[0].seq.replace(150, site.size(), site);
  auto recs = bulge_search(kPattern, {kQuery, 5}, {.dna_bulge = 2, .rna_bulge = 2}, g,
                           {.backend = backend_kind::serial});
  for (const auto& r : recs) {
    if (r.hit.position == 150 && r.hit.direction == '+') {
      EXPECT_EQ(r.variant.type, bulge_type::none);
    }
  }
}

TEST(BulgeTypeNames, MatchCasOffinderConvention) {
  EXPECT_STREQ(bulge_type_name(bulge_type::none), "X");
  EXPECT_STREQ(bulge_type_name(bulge_type::dna), "DNA");
  EXPECT_STREQ(bulge_type_name(bulge_type::rna), "RNA");
}

}  // namespace
