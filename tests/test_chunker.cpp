// Chunker tests: coverage of every fixed-length window, overlap handling.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <set>

#include "genome/chunker.hpp"
#include "util/rng.hpp"

namespace {

genome::genome_t make_genome(std::vector<util::usize> lens) {
  genome::genome_t g;
  util::rng rng(3);
  int idx = 0;
  for (auto len : lens) {
    genome::chromosome c;
    c.name = "chr" + std::to_string(++idx);
    for (util::usize i = 0; i < len; ++i) c.seq += "ACGT"[rng.next_below(4)];
    g.chroms.push_back(std::move(c));
  }
  return g;
}

TEST(Chunker, SingleChunkWhenSmall) {
  auto g = make_genome({100});
  auto chunks = genome::make_chunks(g, 1000, 22);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[0].length, 100u);
}

TEST(Chunker, SplitsWithOverlap) {
  auto g = make_genome({250});
  auto chunks = genome::make_chunks(g, 100, 22);
  ASSERT_GE(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].offset, 0u);
  EXPECT_EQ(chunks[1].offset, 100u - 22u);  // re-covers the last 22 bases
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].offset, chunks[i - 1].offset + chunks[i - 1].length - 22);
  }
  EXPECT_EQ(chunks.back().offset + chunks.back().length, 250u);
}

TEST(Chunker, SkipsEmptyChromosomes) {
  auto g = make_genome({50, 0, 30});
  auto chunks = genome::make_chunks(g, 100, 5);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].chrom_index, 0u);
  EXPECT_EQ(chunks[1].chrom_index, 2u);
}

TEST(ChunkerDeath, OverlapMustBeSmallerThanChunk) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto g = make_genome({100});
  EXPECT_DEATH((void)genome::make_chunks(g, 10, 10), "exceed");
}

TEST(Chunker, ChunkViewMatchesSequence) {
  auto g = make_genome({300});
  auto chunks = genome::make_chunks(g, 128, 22);
  for (const auto& c : chunks) {
    EXPECT_EQ(genome::chunk_view(g, c),
              std::string_view(g.chroms[c.chrom_index].seq).substr(c.offset, c.length));
  }
}

// Property: every window of length (overlap+1) lies entirely inside at
// least one chunk — no search window is lost at a boundary.
class ChunkCoverage
    : public ::testing::TestWithParam<std::tuple<util::usize, util::usize, util::usize>> {};

TEST_P(ChunkCoverage, EveryWindowInsideSomeChunk) {
  const auto [chrom_len, max_chunk, plen] = GetParam();
  auto g = make_genome({chrom_len});
  auto chunks = genome::make_chunks(g, max_chunk, plen - 1);
  if (chrom_len < plen) return;
  for (util::usize w = 0; w + plen <= chrom_len; ++w) {
    bool covered = false;
    for (const auto& c : chunks) {
      if (w >= c.offset && w + plen <= c.offset + c.length) {
        covered = true;
        break;
      }
    }
    ASSERT_TRUE(covered) << "window at " << w << " uncovered";  // NOLINT
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ChunkCoverage,
    ::testing::Values(std::tuple{1000u, 100u, 23u}, std::tuple{997u, 64u, 23u},
                      std::tuple{100u, 24u, 23u}, std::tuple{64u, 100u, 23u},
                      std::tuple{230u, 47u, 12u}, std::tuple{22u, 100u, 23u}));

TEST(Chunker, ReassemblyWithoutOverlapIsIdentity) {
  auto g = make_genome({777});
  auto chunks = genome::make_chunks(g, 100, 0);
  std::string rebuilt;
  for (const auto& c : chunks) rebuilt += genome::chunk_view(g, c);
  EXPECT_EQ(rebuilt, g.chroms[0].seq);
}

TEST(Chunker, MultiChromosomeOrdering) {
  auto g = make_genome({150, 80});
  auto chunks = genome::make_chunks(g, 100, 10);
  // chr1 chunks first, then chr2; offsets monotone within a chromosome.
  util::usize prev_chrom = 0, prev_off = 0;
  for (const auto& c : chunks) {
    ASSERT_GE(c.chrom_index, prev_chrom);
    if (c.chrom_index == prev_chrom) {
      ASSERT_GE(c.offset, prev_off);
    }
    prev_chrom = c.chrom_index;
    prev_off = c.offset;
  }
}

}  // namespace
