// Pattern/query device-array construction tests.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include "core/pattern.hpp"
#include "genome/iupac.hpp"

namespace {

TEST(Pattern, NormalizeSequence) {
  EXPECT_EQ(cof::normalize_sequence("acgu"), "ACGT");
  EXPECT_EQ(cof::normalize_sequence("nNrY"), "NNRY");
}

TEST(PatternDeath, RejectsNonIupac) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)cof::normalize_sequence("ACGZ"), "non-IUPAC");
  EXPECT_DEATH((void)cof::normalize_sequence(""), "empty");
}

TEST(Pattern, FwRcLayout) {
  auto p = cof::make_pattern("NNAG");
  EXPECT_EQ(p.plen, 4u);
  EXPECT_EQ(p.fwrc, "NNAG" + genome::reverse_complement("NNAG"));
  EXPECT_EQ(p.fwrc.substr(4), "CTNN");
}

TEST(Pattern, IndexListsNonNPositions) {
  auto p = cof::make_pattern("NNAG");
  // forward half: positions 2,3 then -1 padding
  EXPECT_EQ(p.index[0], 2);
  EXPECT_EQ(p.index[1], 3);
  EXPECT_EQ(p.index[2], -1);
  EXPECT_EQ(p.index[3], -1);
  // reverse-complement half "CTNN": positions 0,1
  EXPECT_EQ(p.index[4], 0);
  EXPECT_EQ(p.index[5], 1);
  EXPECT_EQ(p.index[6], -1);
}

TEST(Pattern, AllNPatternHasEmptyIndex) {
  auto p = cof::make_pattern("NNNN");
  for (auto v : p.index) EXPECT_EQ(v, -1);
}

TEST(Pattern, NoNPatternHasFullIndex) {
  auto p = cof::make_pattern("ACGT");
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(p.index[k], k);
    EXPECT_EQ(p.index[4 + k], k);
  }
}

TEST(Pattern, PaperPatternIndexesOnlyPam) {
  auto p = cof::make_pattern("NNNNNNNNNNNNNNNNNNNNNRG");
  EXPECT_EQ(p.plen, 23u);
  // forward: R at 21, G at 22
  EXPECT_EQ(p.index[0], 21);
  EXPECT_EQ(p.index[1], 22);
  EXPECT_EQ(p.index[2], -1);
  // reverse complement = "CYNNN...": C at 0, Y at 1
  EXPECT_EQ(p.fwrc[23], 'C');
  EXPECT_EQ(p.fwrc[24], 'Y');
  EXPECT_EQ(p.index[23], 0);
  EXPECT_EQ(p.index[24], 1);
  EXPECT_EQ(p.index[25], -1);
}

TEST(Pattern, QueryIndexesGuideBases) {
  auto q = cof::make_query("GGCCGACCTGTCGCTGACGCNNN");
  EXPECT_EQ(q.plen, 23u);
  for (int k = 0; k < 20; ++k) EXPECT_EQ(q.index[k], k);
  EXPECT_EQ(q.index[20], -1);
  // rc half: "NNN" maps to front, guide rc occupies positions 3..22
  EXPECT_EQ(q.index[23], 3);
  EXPECT_EQ(q.index[23 + 19], 22);
  EXPECT_EQ(q.index[23 + 20], -1);
}

TEST(Pattern, DeviceAccessorsSizes) {
  auto q = cof::make_query("ACGTN");
  EXPECT_EQ(q.device_chars(), 10u);
  EXPECT_EQ(q.index.size(), 10u);
  EXPECT_EQ(q.data()[0], 'A');
  EXPECT_EQ(q.index_data()[0], 0);
}

TEST(Pattern, UConvertsToT) {
  auto q = cof::make_query("UUGG");
  EXPECT_EQ(q.seq, "TTGG");
}

}  // namespace
