// UCSC .2bit container round-trip and integration tests.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <filesystem>
#include <fstream>

#include "core/engine.hpp"
#include "genome/synth.hpp"
#include "genome/twobit_file.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

struct temp_file {
  fs::path path;
  explicit temp_file(const char* name) {
    static int n = 0;
    path = fs::temp_directory_path() /
           (std::string("cof_2bit_") + std::to_string(::getpid()) + "_" +
            std::to_string(n++) + "_" + name);
  }
  ~temp_file() { fs::remove(path); }
};

TEST(TwoBitFile, RoundTripSimple) {
  temp_file f("simple.2bit");
  genome::genome_t g;
  g.chroms = {{"chr1", "ACGTACGTAC"}, {"chr2", "TTTTGGGG"}};
  genome::write_twobit_file(f.path.string(), g);
  auto back = genome::read_twobit_file(f.path.string());
  ASSERT_EQ(back.chroms.size(), 2u);
  EXPECT_EQ(back.chroms[0].name, "chr1");
  EXPECT_EQ(back.chroms[0].seq, "ACGTACGTAC");
  EXPECT_EQ(back.chroms[1].seq, "TTTTGGGG");
}

TEST(TwoBitFile, NBlocksRestored) {
  temp_file f("nblocks.2bit");
  genome::genome_t g;
  g.chroms = {{"chr", "NNACGTNNNNACNGTNNN"}};
  genome::write_twobit_file(f.path.string(), g);
  auto back = genome::read_twobit_file(f.path.string());
  EXPECT_EQ(back.chroms[0].seq, "NNACGTNNNNACNGTNNN");
}

TEST(TwoBitFile, AmbiguityCodesCollapseToN) {
  temp_file f("amb.2bit");
  genome::genome_t g;
  g.chroms = {{"chr", "ACRGT"}};  // R is not representable in 2 bits
  genome::write_twobit_file(f.path.string(), g);
  auto back = genome::read_twobit_file(f.path.string());
  EXPECT_EQ(back.chroms[0].seq, "ACNGT");
}

TEST(TwoBitFile, NonMultipleOfFourLengths) {
  for (int len = 1; len <= 9; ++len) {
    temp_file f("len.2bit");
    std::string seq;
    for (int i = 0; i < len; ++i) seq += "ACGT"[i % 4];
    genome::genome_t g;
    g.chroms = {{"c", seq}};
    genome::write_twobit_file(f.path.string(), g);
    EXPECT_EQ(genome::read_twobit_file(f.path.string()).chroms[0].seq, seq) << len;
  }
}

TEST(TwoBitFile, RandomRoundTrip) {
  util::rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    temp_file f("rand.2bit");
    genome::genome_t g;
    const auto nchroms = 1 + rng.next_below(4);
    for (util::u64 c = 0; c < nchroms; ++c) {
      genome::chromosome chrom;
      chrom.name = "c" + std::to_string(c);
      const auto len = rng.next_below(3000);
      for (util::u64 i = 0; i < len; ++i) chrom.seq += "ACGTN"[rng.next_below(5)];
      g.chroms.push_back(std::move(chrom));
    }
    genome::write_twobit_file(f.path.string(), g);
    auto back = genome::read_twobit_file(f.path.string());
    ASSERT_EQ(back.chroms.size(), g.chroms.size());
    for (size_t i = 0; i < g.chroms.size(); ++i) {
      EXPECT_EQ(back.chroms[i].name, g.chroms[i].name);
      EXPECT_EQ(back.chroms[i].seq, g.chroms[i].seq);
    }
  }
}

TEST(TwoBitFile, PackedSizeRoughlyQuarter) {
  temp_file f("size.2bit");
  genome::genome_t g;
  g.chroms = {{"chr", std::string(100000, 'A')}};
  genome::write_twobit_file(f.path.string(), g);
  EXPECT_LT(fs::file_size(f.path), 26000u);
}

TEST(TwoBitFileDeath, BadSignature) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  temp_file f("bad.2bit");
  {
    std::ofstream out(f.path);
    out << "this is not a 2bit file at all";
  }
  EXPECT_DEATH((void)genome::read_twobit_file(f.path.string()), "signature");
}

TEST(TwoBitFile, LoadGenomeDispatchesOnExtension) {
  temp_file f("auto.2bit");
  genome::genome_t g;
  g.chroms = {{"chrZ", "ACGTNNACGT"}};
  genome::write_twobit_file(f.path.string(), g);
  auto loaded = genome::load_genome(f.path.string());
  ASSERT_EQ(loaded.chroms.size(), 1u);
  EXPECT_EQ(loaded.chroms[0].seq, "ACGTNNACGT");
}

TEST(TwoBitFile, EndToEndSearchFrom2bit) {
  temp_file f("search.2bit");
  auto g = genome::generate([] {
    genome::synth_params p;
    p.assembly = "2bit-e2e";
    p.chromosomes = {{"chrA", 30000}};
    p.seed = 111;
    return p;
  }());
  genome::write_twobit_file(f.path.string(), g);
  auto cfg = cof::parse_input(cof::example_input(f.path.string()));
  auto from_2bit = cof::load_configured_genome(cfg);
  auto r1 = cof::run_search(cfg, from_2bit, {.backend = cof::backend_kind::sycl});
  auto r2 = cof::run_search(cfg, g, {.backend = cof::backend_kind::serial});
  EXPECT_EQ(r1.records, r2.records);
}

}  // namespace
