// Unit tests for the worker pool underpinning the ND-range executor.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  util::thread_pool pool(2);
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) pool.submit([&n] { n.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  util::thread_pool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  util::thread_pool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  util::thread_pool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::thread_pool pool(4);
  const util::usize n = 10007;  // prime, awkward partition
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_range(n, [&](util::usize b, util::usize e) {
    for (util::usize i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (util::usize i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRange) {
  util::thread_pool pool(2);
  bool called = false;
  pool.parallel_for_range(0, [&](util::usize, util::usize) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  util::thread_pool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for_range(3, [&](util::usize b, util::usize e) {
    for (util::usize i = b; i < e; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  util::thread_pool pool(2);
  std::atomic<int> n{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 20; ++i) pool.submit([&n] { n.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(n.load(), 200);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  util::thread_pool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for_range(1000, [&](util::usize b, util::usize e) {
    for (util::usize i = b; i < e; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1000);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&util::thread_pool::global(), &util::thread_pool::global());
}

}  // namespace
