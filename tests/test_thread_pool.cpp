// Unit tests for the worker pool underpinning the ND-range executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  util::thread_pool pool(2);
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) pool.submit([&n] { n.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  util::thread_pool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  util::thread_pool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  util::thread_pool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::thread_pool pool(4);
  const util::usize n = 10007;  // prime, awkward partition
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_range(n, [&](util::usize b, util::usize e) {
    for (util::usize i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (util::usize i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRange) {
  util::thread_pool pool(2);
  bool called = false;
  pool.parallel_for_range(0, [&](util::usize, util::usize) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  util::thread_pool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for_range(3, [&](util::usize b, util::usize e) {
    for (util::usize i = b; i < e; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  util::thread_pool pool(2);
  std::atomic<int> n{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 20; ++i) pool.submit([&n] { n.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(n.load(), 200);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  util::thread_pool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for_range(1000, [&](util::usize b, util::usize e) {
    for (util::usize i = b; i < e; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1000);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&util::thread_pool::global(), &util::thread_pool::global());
}

// -- appended: work-stealing scheduler ---------------------------------------

/// Many severely unbalanced tasks: a few long grinds plus a swarm of trivial
/// ones. With per-worker deques the long tasks pin their owners and the swarm
/// must migrate to idle workers via steals; the test only asserts completion
/// and exact counts (TSan asserts the ordering rules).
TEST(ThreadPoolStealing, UnbalancedTaskStress) {
  util::thread_pool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 400; ++i) {
      const bool heavy = i % 100 == 0;
      pool.submit([&sum, heavy] {
        long local = 0;
        const int spins = heavy ? 20000 : 5;
        for (int k = 0; k < spins; ++k) local += k % 7;
        sum.fetch_add(1 + local - local);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(sum.load(), 8 * 400);
}

/// Tasks submitted from inside workers land on the submitting worker's own
/// deque (LIFO hot path) and remain stealable; the fan-out must fully drain.
TEST(ThreadPoolStealing, NestedSubmitsFromWorkers) {
  util::thread_pool pool(4);
  std::atomic<int> n{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &n] {
      n.fetch_add(1);
      for (int j = 0; j < 10; ++j) {
        pool.submit([&pool, &n] {
          n.fetch_add(1);
          pool.submit([&n] { n.fetch_add(1); });
        });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(n.load(), 50 + 50 * 10 + 50 * 10);
}

/// Explicit grain control: any blocks_per_worker must still cover the range
/// exactly once, including grains that produce more blocks than elements
/// would sensibly need.
TEST(ThreadPoolStealing, GrainParameterCoversRangeExactlyOnce) {
  util::thread_pool pool(3);
  for (util::usize grain : {1u, 2u, 16u, 64u}) {
    const util::usize n = 4099;  // prime
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_range(
        n,
        [&](util::usize b, util::usize e) {
          for (util::usize i = b; i < e; ++i) hits[i].fetch_add(1);
        },
        grain);
    for (util::usize i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1)
        << "grain " << grain << " index " << i;
  }
}

TEST(ThreadPoolStealing, SubmitJobIsWaitable) {
  util::thread_pool pool(2);
  std::atomic<int> n{0};
  std::vector<util::thread_pool::job> jobs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back(pool.submit_job([&n] { n.fetch_add(1); }));
  }
  for (auto& j : jobs) j.wait();
  EXPECT_EQ(n.load(), 32);
  jobs.front().wait();  // waiting again is a no-op
  EXPECT_TRUE(jobs.front().valid());
}

/// Two external threads drive parallel_for_range concurrently on one pool:
/// only one can own the client deque, the other goes through the inject
/// queue. Both ranges must complete exactly once.
TEST(ThreadPoolStealing, ConcurrentExternalParallelForCallers) {
  util::thread_pool pool(4);
  const util::usize n = 5003;
  std::vector<std::atomic<int>> a(n), b(n);
  auto drive = [&pool, n](std::vector<std::atomic<int>>& hits) {
    for (int round = 0; round < 4; ++round) {
      pool.parallel_for_range(n, [&](util::usize lo, util::usize hi) {
        for (util::usize i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
    }
  };
  std::thread ta(drive, std::ref(a));
  std::thread tb(drive, std::ref(b));
  ta.join();
  tb.join();
  for (util::usize i = 0; i < n; ++i) {
    ASSERT_EQ(a[i].load(), 4) << i;
    ASSERT_EQ(b[i].load(), 4) << i;
  }
}

/// Victim selection is deepest-deque-first: the steal scan must order
/// non-empty deques by descending depth, break ties toward the lower slot,
/// and exclude the scanner's own slot.
TEST(ThreadPoolStealing, StealOrderIsDeepestFirst) {
  using order_t = std::vector<unsigned>;
  // Depths per slot; self is slot 1.
  EXPECT_EQ(util::thread_pool::steal_order({3, 9, 7, 0, 7}, 1),
            (order_t{2, 4, 0}));  // 9 excluded (self), 7s tie low-slot-first
  // Empty deques never appear, whatever their position.
  EXPECT_EQ(util::thread_pool::steal_order({0, 0, 5, 0}, 0), (order_t{2}));
  // All empty: nothing to steal.
  EXPECT_TRUE(util::thread_pool::steal_order({0, 0, 0}, 1).empty());
  // Self exclusion even when self is the deepest.
  EXPECT_EQ(util::thread_pool::steal_order({100, 1}, 0), (order_t{1}));
  // Strictly descending by depth.
  EXPECT_EQ(util::thread_pool::steal_order({1, 2, 3, 4}, 3), (order_t{2, 1, 0}));
}

/// Shard-affinity behaviour: a worker that nest-submits a deep backlog onto
/// its own deque keeps the majority of it (owner pops LIFO from its own
/// deque; thieves only take when idle), so per-device consumers retain
/// their shard's work while still letting idle workers help.
TEST(ThreadPoolStealing, OwnerKeepsMajorityOfItsOwnBacklog) {
  util::thread_pool pool(4);
  constexpr int kChildren = 4000;
  // Thieves stay pinned until the owner has worked through 3/4 of its own
  // backlog, then the remainder is up for stealing: the owner's share is
  // deterministically a majority while the drain still ends via steals.
  constexpr int kRelease = (kChildren * 3) / 4;
  std::atomic<int> started{0};
  std::atomic<int> done{0};
  std::atomic<int> on_owner{0};
  std::atomic<bool> release{false};
  const auto owner_id = std::make_shared<std::atomic<std::thread::id>>();
  for (int i = 0; i < 3; ++i) {
    pool.submit([&started, &release] {
      started.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  pool.submit([&, owner_id] {
    // Wait until every pinned thief occupies its own worker — otherwise
    // this task's worker could finish enqueueing and pick up a thief task
    // itself, deadlocking the release.
    while (started.load() < 3) std::this_thread::yield();
    owner_id->store(std::this_thread::get_id());
    for (int j = 0; j < kChildren; ++j) {
      pool.submit([&, owner_id] {
        if (std::this_thread::get_id() == owner_id->load()) {
          on_owner.fetch_add(1);
        }
        if (done.fetch_add(1) + 1 >= kRelease) release.store(true);
      });
    }
  });
  // Keep this external thread out of the pool until the release point:
  // wait_idle() helps execute queued tasks, which would skew the count.
  while (done.load() < kRelease) std::this_thread::yield();
  pool.wait_idle();
  ASSERT_EQ(done.load(), kChildren);
  EXPECT_GT(on_owner.load(), kChildren / 2);
}

/// parallel_for_range issued from inside a worker task: the caller helps by
/// draining its own deque, and blocks stolen by other workers finish
/// elsewhere; the nested range must complete without deadlock.
TEST(ThreadPoolStealing, NestedParallelForFromWorker) {
  util::thread_pool pool(4);
  std::atomic<long> sum{0};
  std::atomic<int> outer_done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &sum, &outer_done] {
      pool.parallel_for_range(1000, [&sum](util::usize b, util::usize e) {
        for (util::usize i = b; i < e; ++i) sum.fetch_add(1);
      });
      outer_done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(outer_done.load(), 8);
  EXPECT_EQ(sum.load(), 8 * 1000);
}

}  // namespace

// -- appended: bounded_queue (streaming-engine chunk channel) -----------------

namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  util::bounded_queue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(BoundedQueue, CloseDrainsBufferedItemsThenFails) {
  util::bounded_queue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: the item is dropped
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // drained
  q.close();               // idempotent
  EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, PushBlocksOnFullUntilPopped) {
  util::bounded_queue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> pushed{false};
  std::thread producer([&q, &pushed] {
    EXPECT_TRUE(q.push(1));  // backpressure: waits for the pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());
  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
}

TEST(BoundedQueue, PopBlocksOnEmptyUntilPushed) {
  util::bounded_queue<int> q(2);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(q.push(7));
  });
  int v = -1;
  ASSERT_TRUE(q.pop(v));  // waits for the delayed producer
  EXPECT_EQ(v, 7);
  producer.join();
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  util::bounded_queue<int> q(2);
  std::atomic<bool> done{false};
  std::thread consumer([&q, &done] {
    int v = 0;
    EXPECT_FALSE(q.pop(v));  // woken by close, nothing to drain
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEverythingOnce) {
  util::bounded_queue<int> q(8);
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> producers, consumers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &sum, &count] {
      int v = 0;
      while (q.pop(v)) {
        sum.fetch_add(v);
        count.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  util::bounded_queue<int> q(0);
  EXPECT_TRUE(q.push(5));
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 5);
}

TEST(BoundedQueue, CarriesMoveOnlyItems) {
  util::bounded_queue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(9)));
  std::unique_ptr<int> p;
  ASSERT_TRUE(q.pop(p));
  ASSERT_TRUE(p != nullptr);
  EXPECT_EQ(*p, 9);
}

}  // namespace
