// Off-target scoring tests (MIT/Hsu single-site score + aggregate guide
// specificity).
#include <gtest/gtest.h>

#include "core/scoring.hpp"
#include "genome/iupac.hpp"

namespace {

using namespace cof;
using namespace cof::scoring;

const std::string kQuery = "GGCCGACCTGTCGCTGACGCNNN";  // 20-mer guide + N PAM

std::string site_with_mismatches(std::initializer_list<int> guide_positions) {
  // Build a site string: the query's letters, lower-cased at the given
  // guide positions (0-based within the 20-mer).
  std::string site = "GGCCGACCTGTCGCTGACGCTGG";  // concrete PAM
  for (int p : guide_positions) {
    site[p] = static_cast<char>(site[p] - 'A' + 'a');
  }
  return site;
}

TEST(MitScore, PerfectMatchScoresOne) {
  EXPECT_DOUBLE_EQ(mit_site_score(kQuery, site_with_mismatches({})), 1.0);
}

TEST(MitScore, SingleMismatchUsesPositionWeight) {
  // Position 1 (0-based) has weight 0 -> score stays 1.0 for m=1 at p=1:
  // 1 * distance(1) * 1/1^2 = 1.
  EXPECT_DOUBLE_EQ(mit_site_score(kQuery, site_with_mismatches({1})), 1.0);
  // Position 13 (0-based) has weight 0.851 -> (1-0.851) = 0.149.
  EXPECT_NEAR(mit_site_score(kQuery, site_with_mismatches({13})), 0.149, 1e-9);
}

TEST(MitScore, PamProximalMismatchesHurtMore) {
  const double distal = mit_site_score(kQuery, site_with_mismatches({2}));
  const double proximal = mit_site_score(kQuery, site_with_mismatches({17}));
  EXPECT_GT(distal, proximal);
}

TEST(MitScore, MoreMismatchesScoreLower) {
  const double one = mit_site_score(kQuery, site_with_mismatches({5}));
  const double two = mit_site_score(kQuery, site_with_mismatches({5, 12}));
  const double three = mit_site_score(kQuery, site_with_mismatches({5, 12, 18}));
  EXPECT_GT(one, two);
  EXPECT_GT(two, three);
}

TEST(MitScore, ClusteredMismatchesScoreLowerThanSpread) {
  // Same positions' weights, different spacing: adjacent mismatches give a
  // smaller mean pairwise distance -> smaller distance term.
  const double clustered = mit_site_score(kQuery, site_with_mismatches({9, 10}));
  // weights: p9 = 0.079, p10 = 0.445; a weight-identical spread comparison
  // needs equal-weight positions, so compare the
  // distance term directly through two equal-weight positions (0 and 1 both
  // weight 0 vs 0 and 19):
  const double near = mit_site_score(kQuery, site_with_mismatches({0, 1}));
  const double far = mit_site_score(kQuery, site_with_mismatches({0, 4}));
  EXPECT_LT(near, far);
  EXPECT_GT(clustered, 0.0);
}

TEST(MitScore, PamPositionsNeverScored) {
  // Lower-case in the PAM region (query 'N') must not count.
  std::string site = "GGCCGACCTGTCGCTGACGCtgg";
  EXPECT_DOUBLE_EQ(mit_site_score(kQuery, site), 1.0);
}

TEST(MitScore, NonTwentyMerScales) {
  const std::string q10 = "ACGTACGTACNN";  // 10-mer guide + NN
  std::string site = "ACGTACGTACGG";
  site[9] = 'g';  // last guide position -> scaled to table position 18
  const double s = mit_site_score(q10, site);
  EXPECT_NEAR(s, 1.0 - 0.685, 1e-9);
}

TEST(MitSpecificity, NoOffTargetsIsPerfect) {
  EXPECT_DOUBLE_EQ(mit_specificity({}), 100.0);
}

TEST(MitSpecificity, DecreasesWithOffTargetLoad) {
  const double one = mit_specificity({0.5});
  const double two = mit_specificity({0.5, 0.5});
  EXPECT_LT(one, 100.0);
  EXPECT_LT(two, one);
  EXPECT_NEAR(one, 100.0 * 100.0 / 150.0, 1e-9);
}

TEST(ScoreSearch, SplitsByQueryAndExcludesOnTarget) {
  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  cfg.queries = {{kQuery, 3}, {kQuery, 3}};
  std::vector<ot_record> records{
      {0, 0, 100, '+', 0, site_with_mismatches({})},       // q0 on-target
      {0, 0, 500, '+', 2, site_with_mismatches({5, 12})},  // q0 off-target
      {1, 0, 900, '-', 1, site_with_mismatches({13})},     // q1 off-target
  };
  auto reports = score_search(cfg, records);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].records.size(), 2u);
  EXPECT_EQ(reports[0].hits_by_mismatch[0], 1u);
  EXPECT_EQ(reports[0].hits_by_mismatch[2], 1u);
  // q0 aggregate counts only the mm=2 site.
  const double expected_q0 =
      mit_specificity({mit_site_score(kQuery, site_with_mismatches({5, 12}))});
  EXPECT_NEAR(reports[0].specificity, expected_q0, 1e-9);
  // q1 has no on-target; its single hit counts.
  EXPECT_LT(reports[1].specificity, 100.0);
  EXPECT_EQ(reports[1].hits_by_mismatch[1], 1u);
}

TEST(ScoreSearch, FormatContainsGuidesAndPercents) {
  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  cfg.queries = {{kQuery, 2}};
  auto reports = score_search(cfg, {});
  const auto text = format_report(reports);
  EXPECT_NE(text.find(kQuery), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(HsuWeights, TwentyEntriesInUnitRange) {
  const auto& w = hsu_weights();
  ASSERT_EQ(w.size(), 20u);
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(w[13], 0.851);
}

}  // namespace

// -- appended: scoring property sweeps ----------------------------------------

#include "util/rng.hpp"

namespace {

TEST(MitScoreProperty, AlwaysInUnitInterval) {
  util::rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    std::string site = "GGCCGACCTGTCGCTGACGCTGG";
    const auto mm = rng.next_below(8);
    for (util::u64 m = 0; m < mm; ++m) {
      const auto p = rng.next_below(20);
      site[p] = static_cast<char>(genome::upper_base(site[p]) - 'A' + 'a');
    }
    const double s = mit_site_score(kQuery, site);
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
  }
}

TEST(MitScoreProperty, AddingAMismatchNeverRaisesScore) {
  util::rng rng(778);
  for (int trial = 0; trial < 100; ++trial) {
    std::string site = "GGCCGACCTGTCGCTGACGCTGG";
    std::vector<int> order(20);
    for (int i = 0; i < 20; ++i) order[i] = i;
    // random shuffle via Fisher-Yates
    for (int i = 19; i > 0; --i) {
      std::swap(order[i], order[rng.next_below(static_cast<util::u64>(i) + 1)]);
    }
    double prev = 1.0;
    for (int m = 0; m < 5; ++m) {
      site[order[m]] =
          static_cast<char>(genome::upper_base(site[order[m]]) - 'A' + 'a');
      const double s = mit_site_score(kQuery, site);
      ASSERT_LE(s, prev + 1e-12) << "trial " << trial << " m " << m;
      prev = s;
    }
  }
}

TEST(MitSpecificityProperty, MonotoneDecreasingInLoad) {
  std::vector<double> offs;
  double prev = mit_specificity(offs);
  for (int i = 0; i < 20; ++i) {
    offs.push_back(0.1);
    const double s = mit_specificity(offs);
    ASSERT_LT(s, prev);
    prev = s;
  }
}

}  // namespace
