// USM (unified shared memory) tests: allocation/free, pointer queries,
// metered memcpy, USM kernels, and equivalence of the USM-based SYCL host
// program with the buffer-based one.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <vector>

#include "core/engine.hpp"
#include "genome/synth.hpp"
#include "syclsim/sycl.hpp"

namespace {

TEST(Usm, AllocateAndFreeEachKind) {
  sycl::queue q{sycl::gpu_selector{}};
  sycl::context ctx = q.get_context();
  auto* d = sycl::malloc_device<int>(10, q);
  auto* h = sycl::malloc_host<int>(10, q);
  auto* s = sycl::malloc_shared<int>(10, q);
  ASSERT_NE(d, nullptr);
  ASSERT_NE(h, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(sycl::get_pointer_type(d, ctx), sycl::usm::alloc::device);
  EXPECT_EQ(sycl::get_pointer_type(h, ctx), sycl::usm::alloc::host);
  EXPECT_EQ(sycl::get_pointer_type(s, ctx), sycl::usm::alloc::shared);
  sycl::free(d, q);
  sycl::free(h, q);
  sycl::free(s, q);
}

TEST(Usm, InteriorPointerResolvesKind) {
  sycl::queue q{sycl::gpu_selector{}};
  auto* d = sycl::malloc_device<int>(100, q);
  EXPECT_EQ(sycl::get_pointer_type(d + 50, q.get_context()),
            sycl::usm::alloc::device);
  EXPECT_EQ(sycl::get_pointer_type(d + 100, q.get_context()),
            sycl::usm::alloc::unknown);  // one past the end
  sycl::free(d, q);
}

TEST(Usm, NonUsmPointerIsUnknown) {
  sycl::queue q{sycl::gpu_selector{}};
  int stack_var = 0;
  EXPECT_EQ(sycl::get_pointer_type(&stack_var, q.get_context()),
            sycl::usm::alloc::unknown);
}

TEST(Usm, FreeNullptrIsNoop) {
  sycl::queue q{sycl::gpu_selector{}};
  sycl::free(nullptr, q);
  SUCCEED();
}

TEST(UsmDeath, FreeingNonUsmPointerDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        sycl::queue q{sycl::gpu_selector{}};
        int x;
        sycl::free(&x, q);
      },
      "non-USM");
}

TEST(Usm, MemcpyRoundTripAndMetering) {
  sycl::queue q{sycl::gpu_selector{}};
  auto& dev = xpu::device::simulator();
  const auto before = dev.memory();
  std::vector<int> host(64);
  for (int i = 0; i < 64; ++i) host[i] = i * i;
  auto* d = sycl::malloc_device<int>(64, q);
  q.memcpy(d, host.data(), 64 * sizeof(int));
  std::vector<int> back(64);
  q.memcpy(back.data(), d, 64 * sizeof(int));
  EXPECT_EQ(back, host);
  const auto after = dev.memory();
  EXPECT_EQ(after.h2d_bytes - before.h2d_bytes, 64u * sizeof(int));
  EXPECT_EQ(after.d2h_bytes - before.d2h_bytes, 64u * sizeof(int));
  sycl::free(d, q);
}

TEST(Usm, HostToHostMemcpyNotMetered) {
  sycl::queue q{sycl::gpu_selector{}};
  auto& dev = xpu::device::simulator();
  const auto before = dev.memory();
  std::vector<char> a(32, 1), b(32, 0);
  q.memcpy(b.data(), a.data(), 32);
  EXPECT_EQ(a, b);
  const auto after = dev.memory();
  EXPECT_EQ(after.h2d_bytes, before.h2d_bytes);
  EXPECT_EQ(after.d2h_bytes, before.d2h_bytes);
}

TEST(Usm, MemsetAndFill) {
  sycl::queue q{sycl::gpu_selector{}};
  auto* d = sycl::malloc_device<int>(16, q);
  q.memset(d, 0, 16 * sizeof(int));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(d[i], 0);
  q.fill(d, 42, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(d[i], 42);
  sycl::free(d, q);
}

TEST(Usm, KernelOnUsmPointers) {
  sycl::queue q{sycl::gpu_selector{}};
  const size_t N = 256;
  auto* in = sycl::malloc_device<int>(N, q);
  auto* out = sycl::malloc_device<int>(N, q);
  std::vector<int> host(N);
  for (size_t i = 0; i < N; ++i) host[i] = static_cast<int>(i);
  q.memcpy(in, host.data(), N * sizeof(int));
  q.parallel_for(sycl::nd_range<1>(sycl::range<1>(N), sycl::range<1>(64)),
                 [=](sycl::nd_item<1> it) {
                   const size_t i = it.get_global_id(0);
                   out[i] = in[i] * 2 + 1;
                 })
      .wait();
  std::vector<int> result(N);
  q.memcpy(result.data(), out, N * sizeof(int));
  for (size_t i = 0; i < N; ++i) EXPECT_EQ(result[i], static_cast<int>(i) * 2 + 1);
  sycl::free(in, q);
  sycl::free(out, q);
}

TEST(Usm, ZeroByteAllocationReturnsNull) {
  sycl::queue q{sycl::gpu_selector{}};
  EXPECT_EQ(sycl::malloc_device(0, q), nullptr);
}

// --- the USM host program ---------------------------------------------------

TEST(UsmPipeline, MatchesBufferPipeline) {
  genome::synth_params p;
  p.assembly = "usm-test";
  p.chromosomes = {{"chrA", 40000}};
  p.seed = 21;
  auto g = genome::generate(p);
  auto cfg = cof::parse_input(cof::example_input("<mem>"));
  auto buffers = cof::run_search(
      cfg, g, {.backend = cof::backend_kind::sycl, .max_chunk = 16384});
  auto usm = cof::run_search(
      cfg, g, {.backend = cof::backend_kind::sycl_usm, .max_chunk = 16384});
  auto serial = cof::run_search(cfg, g, {.backend = cof::backend_kind::serial});
  EXPECT_EQ(usm.records, buffers.records);
  EXPECT_EQ(usm.records, serial.records);
}

TEST(UsmPipeline, NoLeakedUsmAllocations) {
  const auto before = sycl::detail::usm_live_bytes();
  {
    genome::synth_params p;
    p.assembly = "usm-leak";
    p.chromosomes = {{"chrA", 20000}};
    p.seed = 22;
    auto g = genome::generate(p);
    auto cfg = cof::parse_input(cof::example_input("<mem>"));
    (void)cof::run_search(cfg, g,
                          {.backend = cof::backend_kind::sycl_usm,
                           .max_chunk = 8192});
  }
  EXPECT_EQ(sycl::detail::usm_live_bytes(), before);
}

TEST(UsmPipeline, AllVariantsAgree) {
  genome::synth_params p;
  p.assembly = "usm-var";
  p.chromosomes = {{"chrA", 25000}};
  p.seed = 23;
  auto g = genome::generate(p);
  auto cfg = cof::parse_input(cof::example_input("<mem>"));
  auto base = cof::run_search(
      cfg, g, {.backend = cof::backend_kind::sycl_usm, .max_chunk = 9000});
  for (int v = 1; v < cof::kNumComparerVariants; ++v) {
    auto r = cof::run_search(cfg, g,
                             {.backend = cof::backend_kind::sycl_usm,
                              .variant = static_cast<cof::comparer_variant>(v),
                              .max_chunk = 9000});
    EXPECT_EQ(r.records, base.records) << "variant " << v;
  }
}

TEST(UsmPipeline, PlantedRecall) {
  genome::synth_params p;
  p.assembly = "usm-plant";
  p.chromosomes = {{"chrA", 60000}};
  p.seed = 24;
  auto g = genome::generate(p);
  auto cfg = cof::parse_input(cof::example_input("<mem>"));
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  auto planted = genome::plant_sites(g, guide, cfg.pattern, 6, 2, 321);
  auto r = cof::run_search(
      cfg, g, {.backend = cof::backend_kind::sycl_usm, .max_chunk = 16384});
  for (const auto& site : planted) {
    bool found = false;
    for (const auto& rec : r.records) {
      if (rec.query_index == 0 && rec.position == site.position &&
          rec.direction == site.strand && rec.mismatches == 2) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << site.position;
  }
}

}  // namespace
