// Result-record ordering, dedup, site-string rendering, output format.
#include <gtest/gtest.h>

#include "core/results.hpp"

namespace {

using cof::ot_record;

TEST(Results, SortOrder) {
  std::vector<ot_record> r{
      {1, 0, 10, '+', 0, "A"}, {0, 1, 5, '+', 0, "B"}, {0, 0, 20, '-', 0, "C"},
      {0, 0, 20, '+', 0, "D"}, {0, 0, 5, '+', 0, "E"},
  };
  cof::sort_records(r);
  EXPECT_EQ(r[0].site, "E");
  EXPECT_EQ(r[1].site, "D");  // '+' < '-' in ASCII
  EXPECT_EQ(r[2].site, "C");
  EXPECT_EQ(r[3].site, "B");
  EXPECT_EQ(r[4].site, "A");
}

TEST(Results, DedupRemovesChunkOverlapDuplicates) {
  std::vector<ot_record> r{
      {0, 0, 10, '+', 2, "AA"}, {0, 0, 10, '+', 2, "AA"}, {0, 0, 10, '-', 2, "AA"},
      {1, 0, 10, '+', 2, "AA"},
  };
  cof::sort_and_dedup(r);
  EXPECT_EQ(r.size(), 3u);  // same (query,chrom,pos,dir) collapsed
}

TEST(SiteString, ForwardLowercasesMismatches) {
  // query AC GT vs ref AGGT: mismatch at position 1 only.
  EXPECT_EQ(cof::make_site_string("ACGT", "AGGT", '+'), "AgGT");
}

TEST(SiteString, NInQueryNeverLowercases) {
  EXPECT_EQ(cof::make_site_string("NNGT", "CAGT", '+'), "CAGT");
}

TEST(SiteString, RefNLowercasedAgainstConcreteQuery) {
  EXPECT_EQ(cof::make_site_string("ACGT", "ACGN", '+'), "ACGn");
}

TEST(SiteString, ReverseStrandIsReverseComplement) {
  // ref slice GGTC; '-' direction renders rc(GGTC) = GACC; query GACC -> no
  // mismatches.
  EXPECT_EQ(cof::make_site_string("GACC", "GGTC", '-'), "GACC");
}

TEST(SiteString, ReverseStrandMismatchLowercased) {
  // rc(AGTC) = GACT; query GACC mismatches at position 3 (C vs T).
  EXPECT_EQ(cof::make_site_string("GACC", "AGTC", '-'), "GACt");
}

TEST(SiteString, MismatchCountMatchesLowercaseCount) {
  const std::string query = "ACGTACGTAC";
  const std::string ref = "ACCTACGAAC";  // mismatches at 2 and 7
  auto site = cof::make_site_string(query, ref, '+');
  int lower = 0;
  for (char c : site) lower += (c >= 'a' && c <= 'z');
  EXPECT_EQ(lower, 2);
}

TEST(Results, FormatUpstreamLayout) {
  genome::genome_t g;
  g.chroms = {{"chr1", ""}, {"chr2", ""}};
  std::vector<ot_record> r{{0, 1, 12345, '-', 3, "ACgTa"}};
  const auto text = cof::format_records(r, {"QUERYSEQ"}, g);
  EXPECT_EQ(text, "QUERYSEQ\tchr2\t12345\tACgTa\t-\t3\n");
}

TEST(Results, FormatMultipleRecords) {
  genome::genome_t g;
  g.chroms = {{"chrX", ""}};
  std::vector<ot_record> r{{0, 0, 1, '+', 0, "AA"}, {1, 0, 2, '-', 1, "CC"}};
  const auto text = cof::format_records(r, {"Q1", "Q2"}, g);
  EXPECT_EQ(text, "Q1\tchrX\t1\tAA\t+\t0\nQ2\tchrX\t2\tCC\t-\t1\n");
}

}  // namespace
