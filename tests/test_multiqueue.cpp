// Multi-queue engine tests: several host threads each driving a pipeline
// over the shared chunk queue must produce identical results to the single
// queue, across backends (and the per-queue metrics must add up).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "genome/synth.hpp"

namespace {

using namespace cof;

genome::genome_t multi_genome(util::u64 seed) {
  genome::synth_params p;
  p.assembly = "mq-test";
  p.chromosomes = {{"chrA", 50000}, {"chrB", 30000}, {"chrC", 20000}};
  p.seed = seed;
  return genome::generate(p);
}

class QueueSweep : public ::testing::TestWithParam<std::pair<int, backend_kind>> {};

TEST_P(QueueSweep, MatchesSingleQueue) {
  const auto [queues, backend] = GetParam();
  auto g = multi_genome(51);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options single{.backend = backend, .max_chunk = 8192, .num_queues = 1};
  engine_options multi{.backend = backend,
                       .max_chunk = 8192,
                       .num_queues = static_cast<usize>(queues)};
  auto r1 = run_search(cfg, g, single);
  auto rn = run_search(cfg, g, multi);
  EXPECT_EQ(rn.records, r1.records);
}

INSTANTIATE_TEST_SUITE_P(
    QueuesAndBackends, QueueSweep,
    ::testing::Values(std::pair{2, backend_kind::sycl},
                      std::pair{4, backend_kind::sycl},
                      std::pair{3, backend_kind::opencl},
                      std::pair{2, backend_kind::sycl_usm},
                      std::pair{2, backend_kind::sycl_twobit},
                      std::pair{8, backend_kind::sycl}));

TEST(MultiQueue, MetricsAggregateAcrossQueues) {
  auto g = multi_genome(52);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options single{.backend = backend_kind::sycl, .max_chunk = 8192};
  engine_options multi{.backend = backend_kind::sycl, .max_chunk = 8192,
                       .num_queues = 4};
  auto r1 = run_search(cfg, g, single);
  auto rn = run_search(cfg, g, multi);
  // Same total device work regardless of how chunks were distributed.
  EXPECT_EQ(rn.metrics.pipeline.finder_launches,
            r1.metrics.pipeline.finder_launches);
  EXPECT_EQ(rn.metrics.pipeline.comparer_launches,
            r1.metrics.pipeline.comparer_launches);
  EXPECT_EQ(rn.metrics.pipeline.h2d_bytes, r1.metrics.pipeline.h2d_bytes);
  EXPECT_EQ(rn.metrics.pipeline.total_loci, r1.metrics.pipeline.total_loci);
}

TEST(MultiQueue, MoreQueuesThanChunks) {
  genome::genome_t g;
  g.chroms.push_back({"tiny", std::string(5000, 'T')});
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  g.chroms[0].seq.replace(100, site.size(), site);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options opt{.backend = backend_kind::sycl, .num_queues = 16};
  auto r = run_search(cfg, g, opt);  // 1 chunk, 16 requested queues
  // The upstream example's queries are mutually overlapping sequences, so
  // the planted site legitimately hits queries 1/2 on the reverse strand
  // too; require the exact query-0 hit and agreement with a single queue.
  bool exact_hit = false;
  for (const auto& rec : r.records) {
    exact_hit |= rec.query_index == 0 && rec.position == 100 &&
                 rec.direction == '+' && rec.mismatches == 0;
  }
  EXPECT_TRUE(exact_hit);
  auto r1 = run_search(cfg, g, {.backend = backend_kind::sycl});
  EXPECT_EQ(r.records, r1.records);
}

TEST(MultiQueue, ZeroQueuesTreatedAsOne) {
  auto g = multi_genome(53);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options opt{.backend = backend_kind::sycl, .max_chunk = 16384,
                     .num_queues = 0};
  auto r = run_search(cfg, g, opt);
  auto serial = run_search(cfg, g, {.backend = backend_kind::serial});
  EXPECT_EQ(r.records, serial.records);
}

TEST(MultiQueue, CountingModeAggregatesSafely) {
  auto g = multi_genome(54);
  auto cfg = parse_input(example_input("<mem>"));
  prof::profiler p1, p4;
  (void)run_search(cfg, g,
                   {.backend = backend_kind::sycl,
                    .max_chunk = 8192,
                    .counting = true,
                    .profiler = &p1,
                    .num_queues = 1});
  (void)run_search(cfg, g,
                   {.backend = backend_kind::sycl,
                    .max_chunk = 8192,
                    .counting = true,
                    .profiler = &p4,
                    .num_queues = 4});
  // Event totals are identical regardless of queue count. (Counters are
  // process-global; the per-launch isolation inside kernel_record_scope is
  // only exact with one queue, but the aggregate must match.)
  util::u64 sum1 = 0, sum4 = 0;
  for (const auto& [name, prof] : p1.kernels()) {
    sum1 += prof.events[prof::ev::global_load];
  }
  for (const auto& [name, prof] : p4.kernels()) {
    sum4 += prof.events[prof::ev::global_load];
  }
  EXPECT_EQ(sum1, sum4);
}

}  // namespace
