// Batched multi-query comparer tests: identical results to per-query
// launches, fewer launches, amortised loci/flag traffic.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "genome/synth.hpp"

namespace {

using namespace cof;

genome::genome_t batch_genome(util::u64 seed, util::usize len = 40000) {
  genome::synth_params p;
  p.assembly = "batch-test";
  p.chromosomes = {{"chrA", len}};
  p.seed = seed;
  return genome::generate(p);
}

TEST(BatchComparer, MatchesPerQueryResults) {
  auto g = batch_genome(81);
  auto cfg = parse_input(example_input("<mem>"));
  auto per_query = run_search(
      cfg, g, {.backend = backend_kind::sycl, .max_chunk = 16384});
  auto batched = run_search(cfg, g,
                            {.backend = backend_kind::sycl,
                             .max_chunk = 16384,
                             .batch_queries = true});
  EXPECT_EQ(batched.records, per_query.records);
}

TEST(BatchComparer, OneComparerLaunchPerChunk) {
  auto g = batch_genome(82);
  auto cfg = parse_input(example_input("<mem>"));
  ASSERT_EQ(cfg.queries.size(), 3u);
  auto per_query = run_search(
      cfg, g, {.backend = backend_kind::sycl, .max_chunk = 16384});
  auto batched = run_search(cfg, g,
                            {.backend = backend_kind::sycl,
                             .max_chunk = 16384,
                             .batch_queries = true});
  EXPECT_EQ(per_query.metrics.pipeline.comparer_launches,
            per_query.metrics.chunks * 3);
  EXPECT_EQ(batched.metrics.pipeline.comparer_launches, batched.metrics.chunks);
}

TEST(BatchComparer, AmortisesLociFlagLoads) {
  auto g = batch_genome(83);
  auto cfg = parse_input(example_input("<mem>"));
  prof::profiler per_q, batched;
  (void)run_search(cfg, g,
                   {.backend = backend_kind::sycl,
                    .max_chunk = 16384,
                    .counting = true,
                    .profiler = &per_q});
  (void)run_search(cfg, g,
                   {.backend = backend_kind::sycl,
                    .max_chunk = 16384,
                    .counting = true,
                    .profiler = &batched,
                    .batch_queries = true});
  const auto pq = per_q.get("comparer/base").events;
  const auto b = batched.get("comparer/batch").events;
  // Same compare work...
  EXPECT_EQ(b[prof::ev::compare], pq[prof::ev::compare]);
  // ...with fewer unique global loads (loci/flag once instead of 3x), noting
  // the batched kernel also reads the per-query thresholds.
  EXPECT_LT(b[prof::ev::global_load] + b[prof::ev::global_load_repeat],
            (pq[prof::ev::global_load] + pq[prof::ev::global_load_repeat]) * 3 / 4);
  // ...and a third of the padded work-items.
  EXPECT_LT(b[prof::ev::work_item], pq[prof::ev::work_item]);
}

TEST(BatchComparer, NonSyclBackendsFallBackToPerQuery) {
  auto g = batch_genome(84, 20000);
  auto cfg = parse_input(example_input("<mem>"));
  for (auto backend : {backend_kind::opencl, backend_kind::sycl_usm,
                       backend_kind::sycl_twobit}) {
    auto r = run_search(cfg, g,
                        {.backend = backend, .max_chunk = 8192,
                         .batch_queries = true});
    auto serial = run_search(cfg, g, {.backend = backend_kind::serial});
    EXPECT_EQ(r.records, serial.records) << backend_name(backend);
  }
}

TEST(BatchComparer, PlantedSitesAttributedToRightQuery) {
  auto g = batch_genome(85, 60000);
  auto cfg = parse_input(example_input("<mem>"));
  // Plant sites for query 1 specifically.
  const std::string guide = cfg.queries[1].seq.substr(0, 20) + "NGG";
  auto planted = genome::plant_sites(g, guide, cfg.pattern, 4, 1, 500);
  auto r = run_search(cfg, g,
                      {.backend = backend_kind::sycl,
                       .max_chunk = 16384,
                       .batch_queries = true});
  for (const auto& site : planted) {
    bool found = false;
    for (const auto& rec : r.records) {
      if (rec.query_index == 1 && rec.position == site.position &&
          rec.direction == site.strand && rec.mismatches == 1) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << site.position;
  }
}

TEST(BatchComparer, MixedThresholdsRespected) {
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(500, 'T')});
  std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  site[0] = 'A';
  site[3] = 'A';  // 2 mismatches vs query 0's guide
  g.chroms[0].seq.replace(100, site.size(), site);
  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  cfg.queries = {{"GGCCGACCTGTCGCTGACGCNNN", 1},   // excludes (mm=2 > 1)
                 {"GGCCGACCTGTCGCTGACGCNNN", 2}};  // includes
  auto r = run_search(cfg, g,
                      {.backend = backend_kind::sycl, .batch_queries = true});
  bool q0 = false, q1 = false;
  for (const auto& rec : r.records) {
    if (rec.position == 100 && rec.direction == '+') {
      if (rec.query_index == 0) q0 = true;
      if (rec.query_index == 1) q1 = true;
    }
  }
  EXPECT_FALSE(q0);
  EXPECT_TRUE(q1);
}

}  // namespace
