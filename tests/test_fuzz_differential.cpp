// Differential fuzzing: random genomes (with N-gaps), random IUPAC PAM
// patterns, random degenerate queries and thresholds — every device backend
// must agree with the serial reference bit-for-bit, across chunkings and
// work-group sizes. This is the repository's broadest invariant.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "genome/iupac.hpp"
#include "util/rng.hpp"

namespace {

using namespace cof;

struct fuzz_case {
  genome::genome_t g;
  search_config cfg;
  usize max_chunk;
  usize wg;
};

fuzz_case make_case(util::u64 seed) {
  util::rng rng(seed * 2654435761u + 1);
  fuzz_case fc;

  // Genome: 1-3 chromosomes, 2k-30k bases, ACGT with occasional N runs.
  const auto nchroms = 1 + rng.next_below(3);
  for (util::u64 c = 0; c < nchroms; ++c) {
    genome::chromosome chrom;
    chrom.name = "chr" + std::to_string(c);
    const auto len = 2000 + rng.next_below(28000);
    chrom.seq.reserve(len);
    for (util::u64 i = 0; i < len; ++i) {
      if (rng.next_bool(0.01)) {
        const auto gap = 1 + rng.next_below(50);
        for (util::u64 j = 0; j < gap && chrom.seq.size() < len; ++j) {
          chrom.seq += 'N';
        }
      } else {
        chrom.seq += "ACGT"[rng.next_below(4)];
      }
    }
    chrom.seq.resize(len, 'A');
    fc.g.chroms.push_back(std::move(chrom));
  }

  // Pattern: 8-28 positions; N-run guide + 1-4 constrained PAM positions
  // drawn from the full IUPAC alphabet, at a random end.
  const std::string iupac = "ACGTRYSWKMBDHV";
  const auto plen = 8 + rng.next_below(21);
  const auto pam_len = 1 + rng.next_below(4);
  std::string pam;
  for (util::u64 i = 0; i < pam_len; ++i) pam += iupac[rng.next_below(iupac.size())];
  const bool pam_at_3prime = rng.next_bool(0.5);
  std::string pattern = pam_at_3prime
                            ? std::string(plen - pam_len, 'N') + pam
                            : pam + std::string(plen - pam_len, 'N');
  fc.cfg.genome_path = "<fuzz>";
  fc.cfg.pattern = pattern;

  // 1-4 queries: degenerate codes allowed, N's where the PAM sits.
  const auto nqueries = 1 + rng.next_below(4);
  for (util::u64 qi = 0; qi < nqueries; ++qi) {
    std::string q;
    for (util::u64 i = 0; i < plen; ++i) {
      if (pattern[i] != 'N') {
        q += 'N';
      } else if (rng.next_bool(0.1)) {
        q += iupac[rng.next_below(iupac.size())];
      } else {
        q += "ACGT"[rng.next_below(4)];
      }
    }
    fc.cfg.queries.push_back(
        {q, static_cast<u16>(rng.next_below(plen / 2 + 1))});
  }

  fc.max_chunk = 1500 + rng.next_below(20000);
  const usize wgs[] = {0, 16, 64, 128, 256};
  fc.wg = wgs[rng.next_below(5)];
  return fc;
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, AllBackendsMatchSerial) {
  const auto fc = make_case(static_cast<util::u64>(GetParam()));
  const auto serial = run_search(fc.cfg, fc.g, {.backend = backend_kind::serial});
  for (auto backend : {backend_kind::opencl, backend_kind::sycl,
                       backend_kind::sycl_usm}) {
    engine_options opt{.backend = backend,
                       .wg_size = fc.wg,
                       .max_chunk = fc.max_chunk};
    const auto r = run_search(fc.cfg, fc.g, opt);
    ASSERT_EQ(r.records, serial.records)
        << backend_name(backend) << " seed=" << GetParam()
        << " pattern=" << fc.cfg.pattern << " chunk=" << fc.max_chunk
        << " wg=" << fc.wg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(1, 17));

class DifferentialVariants : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialVariants, VariantsMatchSerial) {
  const auto fc = make_case(static_cast<util::u64>(GetParam()) + 1000);
  const auto serial = run_search(fc.cfg, fc.g, {.backend = backend_kind::serial});
  for (int v = 0; v < kNumComparerVariants; ++v) {
    engine_options opt{.backend = backend_kind::sycl,
                       .variant = static_cast<comparer_variant>(v),
                       .max_chunk = fc.max_chunk};
    const auto r = run_search(fc.cfg, fc.g, opt);
    ASSERT_EQ(r.records, serial.records)
        << "variant " << v << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialVariants, ::testing::Range(1, 7));

// opt5 exercises a distinct device data path (u16 deny LUTs instead of
// pattern chars, plus the mask finder twin) — fuzz it across every device
// backend, not just the variant sweep's SYCL run.
class DifferentialOpt5 : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialOpt5, MaskLutMatchesSerialOnAllBackends) {
  const auto fc = make_case(static_cast<util::u64>(GetParam()) + 3000);
  const auto serial = run_search(fc.cfg, fc.g, {.backend = backend_kind::serial});
  for (auto backend : {backend_kind::opencl, backend_kind::sycl,
                       backend_kind::sycl_usm}) {
    engine_options opt{.backend = backend,
                       .variant = comparer_variant::opt5,
                       .wg_size = fc.wg,
                       .max_chunk = fc.max_chunk};
    const auto r = run_search(fc.cfg, fc.g, opt);
    ASSERT_EQ(r.records, serial.records)
        << backend_name(backend) << " seed=" << GetParam()
        << " pattern=" << fc.cfg.pattern << " chunk=" << fc.max_chunk
        << " wg=" << fc.wg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOpt5, ::testing::Range(1, 9));

// The 2-bit pipeline collapses reference ambiguity codes to 'N' — identical
// to the char pipelines on ACGTN genomes, which fuzz genomes are.
class DifferentialTwobit : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTwobit, PackedMatchesSerial) {
  const auto fc = make_case(static_cast<util::u64>(GetParam()) + 2000);
  const auto serial = run_search(fc.cfg, fc.g, {.backend = backend_kind::serial});
  engine_options opt{.backend = backend_kind::sycl_twobit,
                     .max_chunk = fc.max_chunk};
  const auto r = run_search(fc.cfg, fc.g, opt);
  ASSERT_EQ(r.records, serial.records) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTwobit, ::testing::Range(1, 9));

}  // namespace
