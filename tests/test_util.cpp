// Unit tests for the util layer: RNG, strings, CLI, arithmetic helpers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/cli.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using util::rng;
using util::u64;

TEST(Rng, DeterministicForSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  rng r(7);
  for (u64 bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  rng r(11);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Rng, BernoulliFrequency) {
  rng r(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsIndependent) {
  rng a(21);
  rng fork = a.fork();
  // The fork must not replay the parent's future outputs.
  EXPECT_NE(fork.next_u64(), a.next_u64());
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  abc  "), "abc");
  EXPECT_EQ(util::trim("abc"), "abc");
  EXPECT_EQ(util::trim(" \t\r\n "), "");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("a b"), "a b");
}

TEST(Strings, Split) {
  auto t = util::split("a b\tc");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(util::split("   ").empty());
  EXPECT_EQ(util::split("x:y::z", ":").size(), 3u);  // empty tokens dropped
}

TEST(Strings, SplitLines) {
  auto lines = util::split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");  // \r stripped
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
  EXPECT_EQ(util::split_lines("a\n").size(), 2u);  // trailing empty line kept
}

TEST(Strings, ToUpper) { EXPECT_EQ(util::to_upper("acgtN"), "ACGTN"); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(util::starts_with("synth:hg19", "synth:"));
  EXPECT_FALSE(util::starts_with("syn", "synth:"));
}

TEST(Strings, Format) {
  EXPECT_EQ(util::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(util::format("%s", ""), "");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(util::human_bytes(512), "512 B");
  EXPECT_EQ(util::human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(util::human_bytes(3ull << 20), "3.0 MiB");
}

TEST(Strings, ParseU64) {
  unsigned long long v = 0;
  EXPECT_TRUE(util::parse_u64("123", v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(util::parse_u64("  42 ", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(util::parse_u64("0", v));
  EXPECT_FALSE(util::parse_u64("", v));
  EXPECT_FALSE(util::parse_u64("-1", v));
  EXPECT_FALSE(util::parse_u64("12x", v));
  EXPECT_FALSE(util::parse_u64("99999999999999999999999", v));  // overflow
  EXPECT_TRUE(util::parse_u64("18446744073709551615", v));      // max u64
  EXPECT_EQ(v, ~0ULL);
}

TEST(Arith, CeilDivRoundUp) {
  EXPECT_EQ(util::ceil_div(10, 3), 4);
  EXPECT_EQ(util::ceil_div(9, 3), 3);
  EXPECT_EQ(util::ceil_div(1, 5), 1);
  EXPECT_EQ(util::round_up(10, 4), 12);
  EXPECT_EQ(util::round_up(12, 4), 12);
  EXPECT_EQ(util::round_up<util::usize>(0, 16), 0u);
}

TEST(Cli, FlagsAndOptions) {
  util::cli cli("t", "test");
  cli.flag("verbose", "v");
  cli.opt("scale", "s", "256");
  const char* argv[] = {"t", "--verbose", "--scale", "512"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.get_u64("scale"), 512u);
}

TEST(Cli, DefaultsApply) {
  util::cli cli("t", "test");
  cli.opt("scale", "s", "256");
  const char* argv[] = {"t"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_u64("scale"), 256u);
}

TEST(Cli, EqualsSyntax) {
  util::cli cli("t", "test");
  cli.opt("rate", "r", "1.0");
  const char* argv[] = {"t", "--rate=2.5"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.5);
}

TEST(Cli, Positionals) {
  util::cli cli("t", "test");
  cli.positional("input", "in", /*required=*/true);
  cli.positional("output", "out", /*required=*/false);
  const char* argv[] = {"t", "in.txt"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_positional("input"), "in.txt");
  EXPECT_EQ(cli.get_positional("output"), "");
}

TEST(Cli, MissingRequiredPositionalFails) {
  util::cli cli("t", "test");
  cli.positional("input", "in", /*required=*/true);
  const char* argv[] = {"t"};
  EXPECT_FALSE(cli.parse(1, argv));
}

TEST(Cli, UnknownOptionFails) {
  util::cli cli("t", "test");
  const char* argv[] = {"t", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MissingValueFails) {
  util::cli cli("t", "test");
  cli.opt("scale", "s", "1");
  const char* argv[] = {"t", "--scale"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  util::cli cli("t", "test");
  const char* argv[] = {"t", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

}  // namespace
