// opt6 SWAR comparer tests: exhaustive IUPAC x mismatch-count equivalence
// against opt5, ragged-tail fuzz across pattern lengths, both dispatch
// paths (AVX2 lanes and the forced-scalar fallback), and engine-level
// byte-identity of opt6 output across all four backends and queue counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/engine_stream.hpp"
#include "core/kernels.hpp"
#include "core/kernels_swar.hpp"
#include "core/pattern.hpp"
#include "genome/synth.hpp"
#include "util/cpufeat.hpp"
#include "util/rng.hpp"
#include "xpu/device.hpp"

namespace {

using namespace cof;
namespace fs = std::filesystem;

xpu::device& dev() {
  static xpu::device d("swar", 1);
  return d;
}

/// RAII force_scalar toggle so a failing assertion cannot leak the override
/// into later tests.
struct scalar_guard {
  bool prev;
  explicit scalar_guard(bool on) : prev(util::force_scalar()) {
    util::force_scalar(on);
  }
  ~scalar_guard() { util::force_scalar(prev); }
};

struct cmp_run {
  std::vector<u16> mm;
  std::vector<char> dir;
  std::vector<u32> loci;

  bool operator==(const cmp_run& o) const {
    return mm == o.mm && dir == o.dir && loci == o.loci;
  }
};

cmp_run canonicalise(const std::vector<u16>& mm, const std::vector<char>& dir,
                     const std::vector<u32>& mloci, u32 count) {
  cmp_run r;
  std::vector<std::tuple<u32, char, u16>> z;
  for (u32 i = 0; i < count; ++i) z.emplace_back(mloci[i], dir[i], mm[i]);
  std::sort(z.begin(), z.end());
  for (auto& [l, d, m] : z) {
    r.loci.push_back(l);
    r.dir.push_back(d);
    r.mm.push_back(m);
  }
  return r;
}

/// Reference path: the opt5 deny-LUT comparer through the ordinary argument
/// block.
cmp_run run_opt5(const std::string& chunk, const std::vector<u32>& loci,
                 const std::vector<char>& flags, const device_pattern& query,
                 u16 threshold, usize wg = 8) {
  const u32 n = static_cast<u32>(loci.size());
  const usize cap = static_cast<usize>(n) * 2;
  std::vector<u16> mm(cap, 0);
  std::vector<char> dir(cap, 0);
  std::vector<u32> mloci(cap, 0);
  u32 count = 0;

  xpu::launch_config cfg;
  cfg.global[0] = util::round_up<usize>(n, wg);
  cfg.local[0] = wg;
  cfg.local_mem_bytes =
      query.device_chars() * (1 + sizeof(i32)) + query.mask.size() * sizeof(u16) + 128;
  cfg.uses_barrier = true;
  comparer_args a;
  a.locicnts = n;
  a.chr = chunk.data();
  a.loci = loci.data();
  a.flag = flags.data();
  a.comp = query.data();
  a.comp_index = query.index_data();
  a.comp_mask = query.mask_data();
  a.plen = query.plen;
  a.threshold = threshold;
  a.mm_count = mm.data();
  a.direction = dir.data();
  a.mm_loci = mloci.data();
  a.entrycount = &count;
  dev().run(cfg, [&](xpu::xitem& it) {
    char* base = it.local_mem_base();
    const usize idx_off = util::round_up<usize>(query.device_chars(), 8);
    const usize mask_off =
        util::round_up<usize>(idx_off + query.index.size() * sizeof(i32), 8);
    a.l_comp = base;
    a.l_comp_index = reinterpret_cast<i32*>(base + idx_off);
    a.l_comp_mask = reinterpret_cast<u16*>(base + mask_off);
    comparer_dispatch<direct_mem>(comparer_variant::opt5, it, a);
  });
  return canonicalise(mm, dir, mloci, count);
}

/// opt6 path. `via_lanes` launches through the executor's lane-batched row
/// body (the production dispatch); otherwise the per-item kernel runs.
cmp_run run_opt6(const std::string& chunk, const std::vector<u32>& loci,
                 const std::vector<char>& flags, const device_pattern& query,
                 u16 threshold, usize wg = 8, bool via_lanes = false,
                 xpu::launch_stats* stats_out = nullptr) {
  const u32 n = static_cast<u32>(loci.size());
  const usize cap = static_cast<usize>(n) * 2;
  std::vector<u16> mm(cap, 0);
  std::vector<char> dir(cap, 0);
  std::vector<u32> mloci(cap, 0);
  u32 count = 0;
  const auto sref = swar_pack(chunk);

  xpu::launch_config cfg;
  cfg.global[0] = util::round_up<usize>(n, wg);
  cfg.local[0] = wg;
  cfg.local_mem_bytes =
      query.swar.size() * sizeof(util::u64) + query.mask.size() * sizeof(u16) + 128;
  cfg.uses_barrier = true;
  cfg.single_leading_barrier = true;
  comparer_swar_args a;
  a.locicnts = n;
  a.chr_packed2 = sref.packed2.data();
  a.chr_amb2 = sref.amb2.data();
  a.chr = chunk.data();
  a.loci = loci.data();
  a.flag = flags.data();
  a.comp_swar = query.swar_data();
  a.comp_mask = query.mask_data();
  a.plen = query.plen;
  a.swar_words = query.swar_words;
  a.threshold = threshold;
  a.mm_count = mm.data();
  a.direction = dir.data();
  a.mm_loci = mloci.data();
  a.entrycount = &count;
  auto item_body = [&](xpu::xitem& it) {
    char* base = it.local_mem_base();
    const usize mask_off =
        util::round_up<usize>(query.swar.size() * sizeof(util::u64), 8);
    a.l_comp_swar = reinterpret_cast<util::u64*>(base);
    a.l_comp_mask = reinterpret_cast<u16*>(base + mask_off);
    comparer_swar_kernel<direct_mem, xpu::xitem, true>(it, a);
  };
  xpu::launch_stats stats;
  if (via_lanes) {
    stats = dev().run_lanes(cfg, item_body,
                            [&](const xpu::xitem& first, usize nlanes) {
                              comparer_swar_args la = a;
                              la.l_comp_swar = const_cast<util::u64*>(a.comp_swar);
                              la.l_comp_mask = const_cast<u16*>(a.comp_mask);
                              comparer_swar_lanes<true>(la, first.get_global_id(0),
                                                        nlanes);
                            });
  } else {
    stats = dev().run(cfg, item_body);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return canonicalise(mm, dir, mloci, count);
}

std::string random_chunk(util::rng& rng, usize len, bool with_n) {
  const char* alpha = with_n ? "ACGTN" : "ACGT";
  const util::u64 nalpha = with_n ? 5 : 4;
  std::string s;
  for (usize i = 0; i < len; ++i) s += alpha[rng.next_below(nalpha)];
  return s;
}

/// All loci valid for (chunk, plen), random flags.
void random_loci(util::rng& rng, usize chunk_len, u32 plen, usize count,
                 std::vector<u32>& loci, std::vector<char>& flags) {
  loci.clear();
  flags.clear();
  const u32 span = static_cast<u32>(chunk_len) - plen + 1;
  for (usize i = 0; i < count; ++i) {
    loci.push_back(static_cast<u32>(rng.next_below(span)));
    flags.push_back(static_cast<char>(rng.next_below(3)));
  }
  std::sort(loci.begin(), loci.end());
}

constexpr const char* kIupac = "ACGTRYSWKMBDHVN";

// ---------------------------------------------------------------------------
// Exhaustive equivalence: every IUPAC pattern base x every mismatch count.
// ---------------------------------------------------------------------------

// For each of the 15 IUPAC codes placed at every position of a short query,
// and for every threshold 0..plen, opt6 must report exactly the opt5 hits
// (same loci, strands and mismatch counts). The reference chunk mixes all
// four bases plus ambiguous 'N' so each deny mask row and the ambiguity
// fallback are all exercised.
TEST(SwarEquivalence, AllIupacBasesAllThresholds) {
  util::rng rng(601);
  const std::string chunk = random_chunk(rng, 96, /*with_n=*/true);
  std::vector<u32> loci;
  std::vector<char> flags;
  constexpr u32 kPlen = 9;
  random_loci(rng, chunk.size(), kPlen, 24, loci, flags);

  for (const char* c = kIupac; *c != '\0'; ++c) {
    for (u32 pos = 0; pos < kPlen; ++pos) {
      std::string q(kPlen, 'A');
      q[pos] = *c;
      const auto query = make_pattern(q);
      for (u16 threshold = 0; threshold <= kPlen; ++threshold) {
        const auto want = run_opt5(chunk, loci, flags, query, threshold);
        const auto got = run_opt6(chunk, loci, flags, query, threshold);
        ASSERT_EQ(got, want) << "base=" << *c << " pos=" << pos
                             << " threshold=" << threshold;
      }
    }
  }
}

// Dense all-ambiguous query: every position a different IUPAC code, so one
// window evaluation mixes plain deny-mask tests with LUT fallbacks at many
// offsets at once.
TEST(SwarEquivalence, MixedIupacQuery) {
  util::rng rng(602);
  const std::string chunk = random_chunk(rng, 128, /*with_n=*/true);
  const std::string q = "ACGTRYSWKMBDHVNRYN";  // plen 18
  const auto query = make_pattern(q);
  std::vector<u32> loci;
  std::vector<char> flags;
  random_loci(rng, chunk.size(), query.plen, 40, loci, flags);
  for (u16 threshold : {u16{0}, u16{3}, u16{9}, u16{18}}) {
    const auto want = run_opt5(chunk, loci, flags, query, threshold);
    const auto got = run_opt6(chunk, loci, flags, query, threshold);
    ASSERT_EQ(got, want) << "threshold=" << threshold;
  }
}

// ---------------------------------------------------------------------------
// Ragged-tail fuzz: every pattern length around the 32-base word boundary.
// ---------------------------------------------------------------------------

// plen 1..40 crosses the one-word/two-word boundary (32) and exercises every
// tail length of the active mask; random IUPAC queries and random loci.
TEST(SwarFuzz, RaggedTailLengths) {
  util::rng rng(603);
  for (u32 plen = 1; plen <= 40; ++plen) {
    const std::string chunk = random_chunk(rng, plen + 160, /*with_n=*/true);
    std::string q;
    for (u32 i = 0; i < plen; ++i) q += kIupac[rng.next_below(15)];
    const auto query = make_pattern(q);
    std::vector<u32> loci;
    std::vector<char> flags;
    random_loci(rng, chunk.size(), plen, 32, loci, flags);
    const u16 threshold = static_cast<u16>(rng.next_below(plen + 1));
    const auto want = run_opt5(chunk, loci, flags, query, threshold);
    const auto got = run_opt6(chunk, loci, flags, query, threshold);
    ASSERT_EQ(got, want) << "plen=" << plen << " threshold=" << threshold;
  }
}

// Loci landing on every in-word offset (0..31) so the two-word shift-combine
// window fetch is exercised at each shift amount, including shift 0.
TEST(SwarFuzz, EveryWindowShift) {
  util::rng rng(604);
  const std::string chunk = random_chunk(rng, 96, /*with_n=*/false);
  const auto query = make_pattern("GGCCGACCTGTCGCTGACGCNRG");
  std::vector<u32> loci;
  std::vector<char> flags;
  for (u32 l = 0; l < 64; ++l) {
    loci.push_back(l);
    flags.push_back(static_cast<char>(l % 3));
  }
  for (u16 threshold : {u16{5}, u16{12}, u16{23}}) {
    const auto want = run_opt5(chunk, loci, flags, query, threshold);
    const auto got = run_opt6(chunk, loci, flags, query, threshold);
    ASSERT_EQ(got, want) << "threshold=" << threshold;
  }
}

// ---------------------------------------------------------------------------
// Dispatch paths: AVX2 lane rows vs the forced-scalar fallback.
// ---------------------------------------------------------------------------

// The lane-batched row body must match the per-item kernel bit for bit, on
// whichever path the host actually selects.
TEST(SwarDispatch, LanesMatchPerItem) {
  util::rng rng(605);
  const std::string chunk = random_chunk(rng, 256, /*with_n=*/true);
  const auto query = make_pattern("GGCCGACCTGTCGCTGACGCNRG");
  std::vector<u32> loci;
  std::vector<char> flags;
  random_loci(rng, chunk.size(), query.plen, 120, loci, flags);

  const auto per_item = run_opt6(chunk, loci, flags, query, 6, 16, false);
  xpu::launch_stats stats;
  const auto lanes = run_opt6(chunk, loci, flags, query, 6, 16, true, &stats);
  EXPECT_EQ(lanes, per_item);
  // On an AVX2 host without the scalar override the executor must actually
  // have taken the lane path.
  EXPECT_EQ(stats.lanes_dispatch, util::simd_lanes_enabled());
}

// COF_FORCE_SCALAR / force_scalar() pins the per-item path; results must be
// identical and the launch must report scalar dispatch.
TEST(SwarDispatch, ForcedScalarMatchesSimd) {
  util::rng rng(606);
  const std::string chunk = random_chunk(rng, 200, /*with_n=*/true);
  const auto query = make_pattern("ACGTRYSWKMBDHVNACGTNGG");
  std::vector<u32> loci;
  std::vector<char> flags;
  random_loci(rng, chunk.size(), query.plen, 64, loci, flags);

  cmp_run simd, scalar;
  xpu::launch_stats simd_stats, scalar_stats;
  simd = run_opt6(chunk, loci, flags, query, 8, 16, true, &simd_stats);
  {
    scalar_guard guard(true);
    EXPECT_FALSE(util::simd_lanes_enabled());
    scalar = run_opt6(chunk, loci, flags, query, 8, 16, true, &scalar_stats);
  }
  EXPECT_EQ(scalar, simd);
  EXPECT_FALSE(scalar_stats.lanes_dispatch);
}

// ---------------------------------------------------------------------------
// Engine-level byte-identity: all four backends x {1,2,4} queues.
// ---------------------------------------------------------------------------

genome::genome_t swar_genome(util::u64 seed) {
  genome::synth_params p;
  p.assembly = "swar-test";
  p.chromosomes = {{"chrA", 40000}, {"chrB", 20000}};
  p.seed = seed;
  return genome::generate(p);
}

class SwarBackendSweep
    : public ::testing::TestWithParam<std::pair<backend_kind, int>> {};

// opt6 must produce byte-identical search output to the same backend's opt5
// across every queue count. (Comparing within one backend keeps the twobit
// facade's collapsed-'N' semantics out of the equation.)
TEST_P(SwarBackendSweep, Opt6MatchesOpt5) {
  const auto [backend, queues] = GetParam();
  auto g = swar_genome(71);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options opt5{.backend = backend,
                      .variant = comparer_variant::opt5,
                      .max_chunk = 8192,
                      .num_queues = static_cast<usize>(queues)};
  engine_options opt6 = opt5;
  opt6.variant = comparer_variant::opt6;
  const auto want = run_search(cfg, g, opt5);
  const auto got = run_search(cfg, g, opt6);
  EXPECT_EQ(got.records, want.records);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndQueues, SwarBackendSweep,
    ::testing::Values(std::pair{backend_kind::sycl, 1},
                      std::pair{backend_kind::sycl, 2},
                      std::pair{backend_kind::sycl, 4},
                      std::pair{backend_kind::opencl, 1},
                      std::pair{backend_kind::opencl, 2},
                      std::pair{backend_kind::opencl, 4},
                      std::pair{backend_kind::sycl_usm, 1},
                      std::pair{backend_kind::sycl_usm, 2},
                      std::pair{backend_kind::sycl_usm, 4},
                      std::pair{backend_kind::sycl_twobit, 1},
                      std::pair{backend_kind::sycl_twobit, 2},
                      std::pair{backend_kind::sycl_twobit, 4}));

// The batched multi-query comparer (comparer_multi_opt6) runs when
// batch_queries is set; it must agree with the per-query path.
TEST(SwarEngine, BatchedQueriesMatchUnbatched) {
  auto g = swar_genome(72);
  auto cfg = parse_input(example_input("<mem>"));
  for (backend_kind backend :
       {backend_kind::sycl, backend_kind::opencl, backend_kind::sycl_usm,
        backend_kind::sycl_twobit}) {
    engine_options plain{.backend = backend,
                         .variant = comparer_variant::opt6,
                         .max_chunk = 8192};
    engine_options batched = plain;
    batched.batch_queries = true;
    const auto want = run_search(cfg, g, plain);
    const auto got = run_search(cfg, g, batched);
    EXPECT_EQ(got.records, want.records)
        << "backend=" << static_cast<int>(backend);
  }
}

// Streamed (disk-chunked) output with opt6 must equal the in-memory opt5
// result for every backend, on both dispatch paths.
TEST(SwarEngine, StreamedOutputMatchesAcrossDispatchPaths) {
  struct temp_dir {
    fs::path path;
    temp_dir() {
      path = fs::temp_directory_path() /
             ("cof_swar_" + std::to_string(::getpid()));
      fs::create_directories(path);
    }
    ~temp_dir() { fs::remove_all(path); }
  } dir;

  auto g = swar_genome(73);
  auto cfg = parse_input(example_input("<file>"));
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 4, 1, 74);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  for (backend_kind backend :
       {backend_kind::sycl, backend_kind::opencl, backend_kind::sycl_usm,
        backend_kind::sycl_twobit}) {
    engine_options base{.backend = backend,
                        .variant = comparer_variant::opt5,
                        .max_chunk = 7000,
                        .num_queues = 2};
    engine_options opt6 = base;
    opt6.variant = comparer_variant::opt6;
    const auto want = run_search(cfg, g, base);
    const auto simd = run_search_streaming(cfg, file.string(), opt6);
    EXPECT_EQ(simd.records, want.records)
        << "backend=" << static_cast<int>(backend);
    {
      scalar_guard guard(true);
      const auto scalar = run_search_streaming(cfg, file.string(), opt6);
      EXPECT_EQ(scalar.records, want.records)
          << "scalar, backend=" << static_cast<int>(backend);
    }
  }
}

// Counting mode (profiler attached) must not disturb opt6 results, and must
// record SWAR word evaluations rather than per-character events.
TEST(SwarEngine, CountingRunMatchesAndCountsSwarOps) {
  auto g = swar_genome(75);
  auto cfg = parse_input(example_input("<mem>"));
  engine_options plain{.backend = backend_kind::sycl,
                       .variant = comparer_variant::opt6,
                       .max_chunk = 8192};
  prof::profiler p;
  engine_options counting = plain;
  counting.counting = true;
  counting.profiler = &p;
  const auto want = run_search(cfg, g, plain);
  const auto got = run_search(cfg, g, counting);
  EXPECT_EQ(got.records, want.records);
  util::u64 swar_ops = 0;
  for (const auto& [name, prof] : p.kernels()) {
    swar_ops += prof.events[prof::ev::swar_op];
  }
  EXPECT_GT(swar_ops, 0u);
}

}  // namespace
