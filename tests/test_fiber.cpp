// Unit tests for the fiber layer (work-item suspension at barriers).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xpu/fiber.hpp"

namespace {

using xpu::fiber;
using xpu::fiber_stack;
using xpu::fiber_stack_pool;

TEST(Fiber, RunsToCompletionWithoutYield) {
  fiber_stack stack(64 * 1024);
  int ran = 0;
  fiber f;
  f.start(&stack, [](void* p) { ++*static_cast<int*>(p); }, &ran);
  EXPECT_FALSE(f.done());
  EXPECT_TRUE(f.resume());
  EXPECT_TRUE(f.done());
  EXPECT_EQ(ran, 1);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  fiber_stack stack(64 * 1024);
  std::vector<int> trace;
  struct ctx_t {
    std::vector<int>* trace;
  } ctx{&trace};
  fiber f;
  f.start(&stack,
          [](void* p) {
            auto* c = static_cast<ctx_t*>(p);
            c->trace->push_back(1);
            fiber::yield();
            c->trace->push_back(2);
            fiber::yield();
            c->trace->push_back(3);
          },
          &ctx);
  EXPECT_FALSE(f.resume());
  trace.push_back(-1);
  EXPECT_FALSE(f.resume());
  trace.push_back(-2);
  EXPECT_TRUE(f.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, -1, 2, -2, 3}));
}

TEST(Fiber, LocalStateSurvivesYield) {
  fiber_stack stack(64 * 1024);
  long out = 0;
  struct ctx_t {
    long* out;
  } ctx{&out};
  fiber f;
  f.start(&stack,
          [](void* p) {
            long acc = 0;
            for (int i = 1; i <= 10; ++i) {
              acc += i;  // stack-resident accumulator across yields
              fiber::yield();
            }
            *static_cast<ctx_t*>(p)->out = acc;
          },
          &ctx);
  while (!f.resume()) {
  }
  EXPECT_EQ(out, 55);
}

TEST(Fiber, ManyInterleavedFibers) {
  constexpr int kN = 64;
  std::vector<std::unique_ptr<fiber_stack>> stacks;
  std::vector<fiber> fibers(kN);
  std::vector<int> counters(kN, 0);
  struct ctx_t {
    int* counter;
  };
  std::vector<ctx_t> ctxs(kN);
  for (int i = 0; i < kN; ++i) {
    stacks.push_back(std::make_unique<fiber_stack>(64 * 1024));
    ctxs[i].counter = &counters[i];
    fibers[i].start(stacks[i].get(),
                    [](void* p) {
                      auto* c = static_cast<ctx_t*>(p);
                      for (int round = 0; round < 5; ++round) {
                        ++*c->counter;
                        fiber::yield();
                      }
                    },
                    &ctxs[i]);
  }
  int live = kN;
  while (live > 0) {
    for (auto& f : fibers) {
      if (!f.done() && f.resume()) --live;
    }
  }
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counters[i], 5);
}

TEST(Fiber, DeepStackUsage) {
  fiber_stack stack(64 * 1024);
  std::string out;
  struct ctx_t {
    std::string* out;
  } ctx{&out};
  fiber f;
  f.start(&stack,
          [](void* p) {
            // ~16 KiB of live stack data, well inside the 64 KiB stack.
            char buf[16 * 1024];
            for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = char('a' + i % 26);
            fiber::yield();
            *static_cast<ctx_t*>(p)->out = std::string(buf, 26);
          },
          &ctx);
  while (!f.resume()) {
  }
  EXPECT_EQ(out, "abcdefghijklmnopqrstuvwxyz");
}

TEST(FiberStackPool, ReusesReleasedStacks) {
  auto& pool = fiber_stack_pool::this_thread();
  auto s1 = pool.acquire();
  char* base = s1->base();
  pool.release(std::move(s1));
  auto s2 = pool.acquire();
  EXPECT_EQ(s2->base(), base);  // LIFO reuse
  pool.release(std::move(s2));
}

TEST(FiberStack, UsableSizeAtLeastRequested) {
  fiber_stack s(10 * 1024);
  EXPECT_GE(s.size(), 10u * 1024);
  // The whole usable region must be writable (guard page is below it).
  s.base()[0] = 1;
  s.base()[s.size() - 1] = 1;
}

}  // namespace
