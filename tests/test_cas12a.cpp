// 5'-PAM nuclease support (Cas12a/Cpf1: TTTV PAM upstream of the guide).
// The engine is PAM-position-agnostic by construction; these tests pin that
// down end-to-end, including bulges within the trailing guide region.
#include <gtest/gtest.h>

#include "core/bulge.hpp"
#include "core/engine.hpp"
#include "genome/synth.hpp"

namespace {

using namespace cof;

// Cas12a: TTTV PAM + 20-nt guide (pattern "TTTV" + 20 N's).
const std::string kPattern = "TTTVNNNNNNNNNNNNNNNNNNNN";
const std::string kGuide = "GACCTGTCGCTGACGCATGG";   // 20 nt
const std::string kQuery = "NNNN" + kGuide;          // N's at the PAM

genome::genome_t background(util::usize len = 4000, char fill = 'G') {
  // 'G' background: can never satisfy the TTTV PAM (needs three T's) nor
  // its reverse complement (BAAA: needs three A's).
  genome::genome_t g;
  g.chroms.push_back({"chr12a", std::string(len, fill)});
  return g;
}

search_config cas12a_config(u16 mm = 3) {
  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = kPattern;
  cfg.queries = {{kQuery, mm}};
  return cfg;
}

TEST(Cas12a, PatternIndexesPamAtFront) {
  const auto p = make_pattern(kPattern);
  EXPECT_EQ(p.index[0], 0);  // T
  EXPECT_EQ(p.index[1], 1);
  EXPECT_EQ(p.index[2], 2);
  EXPECT_EQ(p.index[3], 3);  // V
  EXPECT_EQ(p.index[4], -1);
  // rc half = rc(TTTV...) = N20 + BAAA: constrained at the tail.
  EXPECT_EQ(p.index[24], 20);
  EXPECT_EQ(p.index[27], 23);
}

TEST(Cas12a, FindsForwardSite) {
  auto g = background();
  const std::string site = "TTTA" + kGuide;  // V = A
  g.chroms[0].seq.replace(500, site.size(), site);
  auto cfg = cas12a_config();
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].position, 500u);
  EXPECT_EQ(r.records[0].direction, '+');
  EXPECT_EQ(r.records[0].mismatches, 0);
}

TEST(Cas12a, RejectsTInPamVPosition) {
  auto g = background();
  const std::string site = "TTTT" + kGuide;  // V excludes T
  g.chroms[0].seq.replace(500, site.size(), site);
  auto cfg = cas12a_config();
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});
  EXPECT_TRUE(r.records.empty());
}

TEST(Cas12a, FindsReverseStrandSite) {
  auto g = background();
  const std::string fw_site = "TTTC" + kGuide;
  g.chroms[0].seq.replace(1200, fw_site.size(),
                          genome::reverse_complement(fw_site));
  auto cfg = cas12a_config();
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].direction, '-');
  EXPECT_EQ(r.records[0].mismatches, 0);
  EXPECT_EQ(r.records[0].site, fw_site);  // rendered strand-oriented
}

TEST(Cas12a, AllBackendsAgree) {
  auto g = background(20000);
  // scatter a few sites with mismatches
  const std::string exact = "TTTG" + kGuide;
  g.chroms[0].seq.replace(300, exact.size(), exact);
  std::string mut = exact;
  mut[8] = 'T';
  mut[15] = 'A';
  g.chroms[0].seq.replace(5000, mut.size(), mut);
  g.chroms[0].seq.replace(9000, exact.size(), genome::reverse_complement(mut));
  auto cfg = cas12a_config(4);
  auto serial = run_search(cfg, g, {.backend = backend_kind::serial});
  EXPECT_GE(serial.records.size(), 3u);
  for (auto backend : {backend_kind::opencl, backend_kind::sycl,
                       backend_kind::sycl_usm, backend_kind::sycl_twobit}) {
    auto r = run_search(cfg, g, {.backend = backend, .max_chunk = 6000});
    EXPECT_EQ(r.records, serial.records) << backend_name(backend);
  }
}

TEST(Cas12aBulge, ExpandsWithinTrailingGuideRegion) {
  auto variants = expand_bulges(kPattern, kQuery, {.dna_bulge = 1, .rna_bulge = 1});
  ASSERT_GT(variants.size(), 1u);
  for (const auto& v : variants) {
    if (v.type == bulge_type::none) continue;
    // The PAM head must be untouched.
    EXPECT_EQ(v.pattern.substr(0, 4), "TTTV");
    EXPECT_EQ(v.query.size(), v.pattern.size());
    EXPECT_GT(v.position, 4u);  // strictly inside the guide region
  }
}

TEST(Cas12aBulge, RecoversDnaBulgeSite) {
  auto g = background(6000);
  // Genome has an extra base inside the guide match.
  const std::string site =
      "TTTA" + kGuide.substr(0, 9) + "C" + kGuide.substr(9);
  g.chroms[0].seq.replace(2500, site.size(), site);
  auto recs = bulge_search(kPattern, {kQuery, 0}, {.dna_bulge = 1}, g,
                           {.backend = backend_kind::serial});
  bool found = false;
  for (const auto& r : recs) {
    if (r.hit.position == 2500 && r.variant.type == bulge_type::dna &&
        r.hit.mismatches == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cas12aBulge, RecoversRnaBulgeSite) {
  auto g = background(6000);
  const std::string site = "TTTA" + kGuide.substr(0, 6) + kGuide.substr(7);
  g.chroms[0].seq.replace(3500, site.size(), site);
  auto recs = bulge_search(kPattern, {kQuery, 0}, {.rna_bulge = 1}, g,
                           {.backend = backend_kind::serial});
  bool found = false;
  for (const auto& r : recs) {
    if (r.hit.position == 3500 && r.variant.type == bulge_type::rna &&
        r.hit.mismatches == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cas12a, MixedPamPatternBothEnds) {
  // Exotic but legal: constraints at both ends (e.g. 5' T, 3' GG); the
  // guide-region finder must pick the longest interior N-run.
  const std::string pattern = "TNNNNNNNNNNGG";
  const std::string query = "NACGTACGTACNN";
  auto variants = expand_bulges(pattern, query, {.dna_bulge = 1});
  for (const auto& v : variants) {
    if (v.type == bulge_type::none) continue;
    EXPECT_EQ(v.pattern.front(), 'T');
    EXPECT_EQ(v.pattern.substr(v.pattern.size() - 2), "GG");
  }
}

}  // namespace
