// Resident serving suite: soak coverage for the warm-path residency fixes
// (sequential and concurrent query() calls over randomized guide sets,
// byte-identity vs the serial reference, residency-hit and per-call
// metrics-delta assertions, LRU eviction under a tiny byte budget) plus the
// serve::server admission layer (burst coalescing into fewer launches,
// graceful shutdown draining the queue, per-request validation that cannot
// fail a neighbour's batch). The concurrency tests carry the tsan label —
// the daemon admission loop depends on concurrent query() being defined.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/index.hpp"
#include "fault/fault.hpp"
#include "genome/synth.hpp"
#include "json_compat.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/common.hpp"

namespace {

using util::u64;
using util::usize;

constexpr const char* kPattern = "NNNNNNNNNNNNNNNNNNNNNGG";

genome::genome_t serve_genome(u64 seed) {
  genome::synth_params p;
  p.assembly = "serve-test";
  p.chromosomes = {{"chrA", 30000}, {"chrB", 12000}};
  p.seed = seed;
  return genome::generate(p);
}

/// Candidate guides lifted from real genome positions (so queries hit), N-free.
std::vector<std::string> guide_pool(const genome::genome_t& g, usize n) {
  std::vector<std::string> pool;
  const std::string& seq = g.chroms[0].seq;
  usize pos = 256;
  while (pool.size() < n && pos + 20 < seq.size()) {
    const std::string core = seq.substr(pos, 20);
    pos += 577;
    if (core.find('N') != std::string::npos) continue;
    pool.push_back(core + "NNN");
  }
  return pool;
}

std::vector<cof::query_spec> pick_guides(const std::vector<std::string>& pool,
                                         std::mt19937& rng, usize n) {
  std::vector<cof::query_spec> qs;
  std::uniform_int_distribution<usize> d(0, pool.size() - 1);
  for (usize i = 0; i < n; ++i) {
    qs.push_back({pool[d(rng)], static_cast<util::u16>(1 + (i % 2))});
  }
  return qs;
}

/// Serial-reference records for one guide set against the same genome.
std::vector<cof::ot_record> serial_records(const genome::genome_t& g,
                                           const std::vector<cof::query_spec>& qs) {
  cof::search_config cfg;
  cfg.pattern = kPattern;
  cfg.queries = qs;
  cof::engine_options opt;
  opt.backend = cof::backend_kind::serial;
  return cof::run_search(cfg, g, opt).records;
}

struct serve_fixture {
  genome::genome_t g;
  cof::genome_index idx;
  std::vector<std::string> pool;

  explicit serve_fixture(u64 seed, usize planted = 8) : g(serve_genome(seed)) {
    cof::search_config cfg;
    cfg.pattern = kPattern;
    pool = guide_pool(g, 6);
    // Plant near-miss sites for the pool guides so record sets are
    // non-trivial everywhere.
    for (usize i = 0; i < pool.size(); ++i) {
      genome::plant_sites(g, pool[i].substr(0, 20) + "NGG", cfg.pattern,
                          planted, 2, seed + 11 * (i + 1));
    }
    cof::engine_options bopt;
    bopt.backend = cof::backend_kind::sycl;
    bopt.max_chunk = 8192;  // several chunks per slot: residency matters
    bopt.num_queues = 2;
    idx = cof::build_index(g, cfg.pattern, bopt);
  }

  cof::engine_options warm_options() const {
    cof::engine_options opt;
    opt.backend = cof::backend_kind::sycl;
    opt.max_chunk = 8192;
    opt.num_queues = 2;
    return opt;
  }
};

// --- warm-path soak ----------------------------------------------------------

/// Many sequential query() calls with randomized guide sets: every call
/// byte-identical to the serial reference, the resident set re-uploads
/// nothing after the first sweep (chunk_hits climbs, misses stay flat), and
/// per-call metrics stay deltas (repeat calls move no chunk bytes h2d).
TEST(ServeSoak, SequentialRandomizedGuidesMatchSerialReference) {
  serve_fixture fx(501);
  cof::index_query_session session(fx.idx, fx.warm_options());
  std::mt19937 rng(77);
  u64 first_h2d = 0;
  bool any_records = false;
  for (usize call = 0; call < 10; ++call) {
    const auto qs = pick_guides(fx.pool, rng, 1 + call % 4);
    const auto out = session.query(qs);
    EXPECT_EQ(out.records, serial_records(fx.g, qs)) << "call " << call;
    any_records = any_records || !out.records.empty();
    if (call == 0) {
      first_h2d = out.metrics.pipeline.h2d_bytes;
      ASSERT_GT(first_h2d, 0u);
    } else {
      // Residency is real: later calls upload only the query patterns,
      // never the chunk text/loci again.
      EXPECT_LT(out.metrics.pipeline.h2d_bytes, first_h2d) << "call " << call;
    }
  }
  EXPECT_TRUE(any_records);
  const u64 misses = session.chunk_misses();
  EXPECT_GT(misses, 0u);
  EXPECT_LE(misses, fx.idx.chunks.size());
  // 10 calls over a fully-resident working set: reuse dominates uploads.
  EXPECT_GT(session.chunk_hits(), session.chunk_misses());
  EXPECT_EQ(session.chunk_evictions(), 0u);
}

/// Two+ threads hammering ONE session concurrently (the daemon admission
/// loop's shape). Per-slot locking must keep every result byte-identical
/// and the hit/miss accounting consistent. Runs under the tsan label.
TEST(ServeSoak, ConcurrentQueriesOnOneSessionAreIdentical) {
  serve_fixture fx(502);
  cof::index_query_session session(fx.idx, fx.warm_options());
  constexpr usize kThreads = 3;
  constexpr usize kCallsPerThread = 4;

  // Fixed guide sets with precomputed references — the threads only race on
  // the session, not on the checking.
  std::vector<std::vector<cof::query_spec>> sets;
  std::vector<std::vector<cof::ot_record>> refs;
  std::mt19937 rng(78);
  for (usize i = 0; i < kThreads * kCallsPerThread; ++i) {
    sets.push_back(pick_guides(fx.pool, rng, 1 + i % 3));
    refs.push_back(serial_records(fx.g, sets.back()));
  }

  std::vector<std::thread> threads;
  std::vector<char> ok(kThreads, 1);
  for (usize t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (usize c = 0; c < kCallsPerThread; ++c) {
        const usize i = t * kCallsPerThread + c;
        if (session.query(sets[i]).records != refs[i]) ok[t] = 0;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (usize t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t << " diverged from serial reference";
  }
  // Every upload/reuse is accounted: totals reconcile with call count.
  EXPECT_GT(session.chunk_hits(), 0u);
  EXPECT_GT(session.chunk_misses(), 0u);
}

/// A byte budget far below the working set forces LRU eviction on every
/// sweep — results must stay identical, only the upload accounting changes;
/// a generous budget on the same workload evicts nothing.
TEST(ServeSoak, LruEvictionUnderTinyBudgetStaysCorrect) {
  serve_fixture fx(503);
  std::mt19937 rng(79);
  const auto qs = pick_guides(fx.pool, rng, 3);
  const auto ref = serial_records(fx.g, qs);

  auto tiny = fx.warm_options();
  tiny.resident_bytes = 1;  // one chunk resident per slot, max
  cof::index_query_session squeezed(fx.idx, tiny);
  for (usize call = 0; call < 3; ++call) {
    EXPECT_EQ(squeezed.query(qs).records, ref) << "squeezed call " << call;
  }
  EXPECT_GT(squeezed.chunk_evictions(), 0u);
  EXPECT_EQ(squeezed.chunk_hits(), 0u);  // every visit re-uploads
  EXPECT_GT(squeezed.chunk_misses(), fx.idx.chunks.size());

  cof::index_query_session roomy(fx.idx, fx.warm_options());
  for (usize call = 0; call < 3; ++call) {
    EXPECT_EQ(roomy.query(qs).records, ref) << "roomy call " << call;
  }
  EXPECT_EQ(roomy.chunk_evictions(), 0u);
  EXPECT_GT(roomy.chunk_hits(), 0u);
}

// --- admission layer ---------------------------------------------------------

/// A burst submitted into a wide-open batching window coalesces into fewer
/// launches than requests — and every future still gets exactly the records
/// a standalone query for its guide would return (query_index == 0).
TEST(ServeServer, BurstCoalescesIntoFewerBatchesWithIdenticalRecords) {
  serve_fixture fx(504);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 200000;  // effectively "wait for the whole burst"
  sopt.max_batch = 64;
  cof::serve::server srv(fx.idx, sopt);

  constexpr usize kRequests = 8;
  std::vector<std::future<cof::serve::request_result>> futs;
  std::vector<std::string> guides;
  for (usize i = 0; i < kRequests; ++i) {
    const std::string& guide = fx.pool[i % fx.pool.size()];
    guides.push_back(guide);
    futs.push_back(srv.submit(guide, 2));
  }
  for (usize i = 0; i < kRequests; ++i) {
    const auto res = futs[i].get();
    const auto ref = serial_records(fx.g, {{guides[i], 2}});
    EXPECT_EQ(res.records, ref) << "request " << i;
    EXPECT_GT(res.request_id, 0u);
    for (const auto& r : res.records) EXPECT_EQ(r.query_index, 0u);
  }
  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.admitted, kRequests);
  EXPECT_EQ(st.served, kRequests);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_LT(st.batches, kRequests) << "burst did not coalesce";
  EXPECT_GT(st.max_batch_size, 1u);
}

/// shutdown() closes admission but drains everything already queued — no
/// future is abandoned — and later submits are rejected cleanly.
TEST(ServeServer, ShutdownDrainsQueuedRequestsThenRejects) {
  serve_fixture fx(505);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 100000;  // requests are queued when shutdown lands
  cof::serve::server srv(fx.idx, sopt);

  std::vector<std::future<cof::serve::request_result>> futs;
  for (usize i = 0; i < 4; ++i) {
    futs.push_back(srv.submit(fx.pool[i % fx.pool.size()], 1));
  }
  srv.shutdown();
  for (usize i = 0; i < futs.size(); ++i) {
    const auto ref = serial_records(fx.g, {{fx.pool[i % fx.pool.size()], 1}});
    EXPECT_EQ(futs[i].get().records, ref) << "queued request " << i << " abandoned";
  }
  EXPECT_EQ(srv.stats().served, 4u);
  EXPECT_THROW((void)srv.submit(fx.pool[0], 1), cof::index_error);
  EXPECT_GE(srv.stats().rejected, 1u);
}

/// Malformed requests are rejected at submit() — a wrong-length guide never
/// reaches a batch, so the well-formed request coalesced "next to it" is
/// served normally.
TEST(ServeServer, WrongLengthGuideRejectedWithoutFailingNeighbours) {
  serve_fixture fx(506);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 50000;
  cof::serve::server srv(fx.idx, sopt);

  auto good = srv.submit(fx.pool[0], 2);
  EXPECT_THROW((void)srv.submit("ACGT", 2), cof::index_error);
  EXPECT_EQ(good.get().records, serial_records(fx.g, {{fx.pool[0], 2}}));
  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.served, 1u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.failed, 0u);
}

/// Concurrent submitters (the bench's client shape): records identical per
/// request, total served == total admitted, coalescing visible. tsan label.
TEST(ServeServer, ConcurrentClientsAreServedIdentically) {
  serve_fixture fx(507);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 2000;
  cof::serve::server srv(fx.idx, sopt);

  constexpr usize kClients = 4;
  constexpr usize kPerClient = 5;
  std::vector<std::vector<cof::ot_record>> refs;
  for (usize c = 0; c < kClients; ++c) {
    refs.push_back(serial_records(fx.g, {{fx.pool[c % fx.pool.size()], 1}}));
  }
  std::vector<std::thread> clients;
  std::vector<char> ok(kClients, 1);
  for (usize c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (usize i = 0; i < kPerClient; ++i) {
        auto res = srv.submit(fx.pool[c % fx.pool.size()], 1).get();
        if (res.records != refs[c]) ok[c] = 0;
      }
    });
  }
  for (auto& t : clients) t.join();
  for (usize c = 0; c < kClients; ++c) EXPECT_TRUE(ok[c]) << "client " << c;
  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.admitted, kClients * kPerClient);
  EXPECT_EQ(st.served, kClients * kPerClient);
  EXPECT_EQ(st.failed, 0u);
}

// --- request-scoped telemetry ------------------------------------------------

/// Every request's envelope carries a live id and a timing breakdown that is
/// internally coherent: the device segment measured real work and the parts
/// do not exceed what the client measured end to end.
TEST(ServeTelemetry, TimingEnvelopeIsCoherent) {
  serve_fixture fx(508);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  cof::serve::server srv(fx.idx, sopt);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = srv.submit(fx.pool[0], 2).get();
  const auto wall_us = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  EXPECT_GE(res.request_id, 1u);
  EXPECT_GT(res.timing.device_us, 0u) << "coalesced query took zero time?";
  // Per-segment microsecond truncation can only lose time, never invent it.
  EXPECT_LE(res.timing.total_us(), wall_us + 4);
  srv.shutdown();
}

/// The flow-event chain acceptance bar: exporting a traced serving run and
/// re-parsing it, every request id admitted forms one CONNECTED chain —
/// 's' (admission) first, then at least one 't' hand-off, then 'f'
/// (fulfilment), in timestamp order.
TEST(ServeTelemetry, FlowChainIsConnectedPerRequest) {
  serve_fixture fx(509);
  obs::run_scope scope(true);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 20000;  // coalesce the burst: chains share batches
  cof::serve::server srv(fx.idx, sopt);

  constexpr usize kRequests = 6;
  std::vector<std::future<cof::serve::request_result>> futs;
  for (usize i = 0; i < kRequests; ++i) {
    futs.push_back(srv.submit(fx.pool[i % fx.pool.size()], 1));
  }
  std::vector<u64> ids;
  for (auto& f : futs) ids.push_back(f.get().request_id);
  const std::string json = obs::trace_json();
  srv.shutdown();

  const testjson::jvalue doc = testjson::parse_json(json);
  std::map<u64, std::vector<std::pair<double, std::string>>> chains;
  for (const auto& ev : doc.at("traceEvents").arr) {
    if (!ev.has("name") || ev.at("name").str != "serve.request") continue;
    chains[static_cast<u64>(ev.at("id").num)].push_back(
        {ev.at("ts").num, ev.at("ph").str});
  }
  for (const u64 id : ids) {
    auto it = chains.find(id);
    ASSERT_NE(it, chains.end()) << "request " << id << " has no flow events";
    auto& chain = it->second;
    std::stable_sort(chain.begin(), chain.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_GE(chain.size(), 3u) << "request " << id << " chain too short";
    EXPECT_EQ(chain.front().second, "s") << "request " << id;
    EXPECT_EQ(chain.back().second, "f") << "request " << id;
    usize steps = 0;
    for (usize i = 1; i + 1 < chain.size(); ++i) {
      EXPECT_EQ(chain[i].second, "t") << "request " << id << " event " << i;
      ++steps;
    }
    EXPECT_GE(steps, 1u) << "request " << id << " never crossed a hand-off";
  }
  EXPECT_EQ(chains.size(), kRequests);
}

/// stats_json()/health() stay parseable and consistent while 4 concurrent
/// clients hammer the server — the `!stats`/`!health` control-line payloads,
/// exercised at the layer the CLI wires them from. tsan label.
TEST(ServeTelemetry, StatsJsonAndHealthUnderConcurrentClients) {
  serve_fixture fx(510);
  obs::metrics_registry::global().reset();
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 2000;
  cof::serve::server srv(fx.idx, sopt);

  constexpr usize kClients = 4;
  constexpr usize kPerClient = 4;
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  std::vector<char> ok(kClients, 1);
  for (usize c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (usize i = 0; i < kPerClient; ++i) {
        if (srv.submit(fx.pool[c % fx.pool.size()], 1).get().records.empty() &&
            !serial_records(fx.g, {{fx.pool[c % fx.pool.size()], 1}}).empty()) {
          ok[c] = 0;
        }
      }
    });
  }
  // Poll the live surface while the clients run: every snapshot must parse.
  usize polls = 0;
  while (!done.load() && polls < 1000) {
    const testjson::jvalue live = testjson::parse_json(srv.stats_json());
    EXPECT_TRUE(live.has("health"));
    ++polls;
    if (live.at("served").num >= kClients * kPerClient) done.store(true);
  }
  for (auto& t : clients) t.join();
  for (usize c = 0; c < kClients; ++c) EXPECT_TRUE(ok[c]) << "client " << c;
  // set_value resolves a future before the dispatcher finishes the batch's
  // own bookkeeping — wait for the counters to settle before asserting.
  for (usize spin = 0; spin < 2000; ++spin) {
    const auto st = srv.stats();
    if (st.served >= kClients * kPerClient && st.in_flight == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const testjson::jvalue doc = testjson::parse_json(srv.stats_json());
  EXPECT_EQ(doc.at("health").str, "ok");
  EXPECT_EQ(doc.at("admitted").num, kClients * kPerClient);
  EXPECT_EQ(doc.at("served").num, kClients * kPerClient);
  EXPECT_EQ(doc.at("failed").num, 0.0);
  EXPECT_EQ(doc.at("in_flight").num, 0.0);
  EXPECT_EQ(doc.at("queue_depth").num, 0.0);
  EXPECT_EQ(doc.at("latency_us").at("count").num, kClients * kPerClient);
  EXPECT_GT(doc.at("latency_us").at("p50").num, 0.0);
  EXPECT_GE(doc.at("latency_us").at("p99").num,
            doc.at("latency_us").at("p50").num);
  EXPECT_GT(doc.at("resident").at("bytes").num, 0.0)
      << "served requests left nothing device-resident?";
  EXPECT_GT(doc.at("uptime_s").num, 0.0);
  EXPECT_EQ(srv.health(), cof::serve::health_state::ok);

  srv.shutdown();
  EXPECT_EQ(srv.health(), cof::serve::health_state::draining);
  EXPECT_EQ(testjson::parse_json(srv.stats_json()).at("health").str,
            "draining");
}

// --- sharded serving ---------------------------------------------------------
//
// A server over a multi-device session: concurrency and coalescing compose
// with the shard layer (byte-identity holds with clients hammering a
// 2-device session), the `!stats` payload grows a per-device residency
// array, and a device dying mid-serve degrades health() without failing a
// single request.

/// 4 concurrent clients against a session sharded over 2 devices: every
/// request byte-identical to the serial reference, and the per-device
/// stats_json rows account for the full resident footprint.
TEST(ServeSharded, ConcurrentClientsOnTwoDevicesServedIdentically) {
  serve_fixture fx(513);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.engine.num_devices = 2;
  sopt.batch_window_us = 2000;
  cof::serve::server srv(fx.idx, sopt);

  constexpr usize kClients = 4;
  constexpr usize kPerClient = 5;
  std::vector<std::vector<cof::ot_record>> refs;
  for (usize c = 0; c < kClients; ++c) {
    refs.push_back(serial_records(fx.g, {{fx.pool[c % fx.pool.size()], 1}}));
  }
  std::vector<std::thread> clients;
  std::vector<char> ok(kClients, 1);
  for (usize c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (usize i = 0; i < kPerClient; ++i) {
        auto res = srv.submit(fx.pool[c % fx.pool.size()], 1).get();
        if (res.records != refs[c]) ok[c] = 0;
      }
    });
  }
  for (auto& t : clients) t.join();
  for (usize c = 0; c < kClients; ++c) EXPECT_TRUE(ok[c]) << "client " << c;
  EXPECT_EQ(srv.health(), cof::serve::health_state::ok);

  const testjson::jvalue doc = testjson::parse_json(srv.stats_json());
  ASSERT_TRUE(doc.has("devices"));
  const auto& devs = doc.at("devices").arr;
  ASSERT_EQ(devs.size(), 2u);
  double resident_sum = 0, slot_sum = 0;
  for (const auto& d : devs) {
    EXPECT_EQ(d.at("name").str.rfind("xpu", 0), 0u);
    EXPECT_TRUE(d.at("alive").b);
    EXPECT_GT(d.at("slots").num, 0.0) << "a device owns no slots";
    EXPECT_GT(d.at("resident_bytes").num, 0.0)
        << "a served device holds nothing resident";
    resident_sum += d.at("resident_bytes").num;
    slot_sum += d.at("slots").num;
  }
  EXPECT_EQ(resident_sum, doc.at("resident").at("bytes").num)
      << "per-device residency does not add up to the session total";
  EXPECT_EQ(slot_sum, static_cast<double>(sopt.engine.num_queues *
                                          sopt.engine.num_devices));
  EXPECT_EQ(doc.at("migrations").num, 0.0);

  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.served, kClients * kPerClient);
  EXPECT_EQ(st.failed, 0u);
}

/// A shard device dying under live traffic: the session migrates its slots
/// to the survivor, every in-flight and later request is still served
/// byte-identically — and health()/stats_json surface the capacity loss as
/// degraded + a dead device row, which a fresh server clears.
TEST(ServeSharded, DeadDeviceDegradesHealthWithoutFailingRequests) {
  serve_fixture fx(514);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.engine.num_devices = 2;
  const auto ref = serial_records(fx.g, {{fx.pool[0], 2}});

  fault::scope guard("dev.launch@1=always");
  cof::serve::server srv(fx.idx, sopt);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(srv.submit(fx.pool[0], 2).get().records, ref) << "request " << i;
  }
  EXPECT_EQ(srv.health(), cof::serve::health_state::degraded)
      << "a dead shard device must be operator-visible";
  EXPECT_EQ(srv.session().failed_devices(), 1u);
  EXPECT_GE(srv.session().device_migrations(), 1u);

  const testjson::jvalue doc = testjson::parse_json(srv.stats_json());
  EXPECT_EQ(doc.at("health").str, "degraded");
  const auto& devs = doc.at("devices").arr;
  ASSERT_EQ(devs.size(), 2u);
  EXPECT_TRUE(devs[0].at("alive").b);
  EXPECT_FALSE(devs[1].at("alive").b);
  EXPECT_EQ(devs[1].at("resident_bytes").num, 0.0)
      << "a dead device still holds resident chunks";
  EXPECT_GE(doc.at("migrations").num, 1.0);
  srv.shutdown();
  const auto st = srv.stats();
  EXPECT_EQ(st.served, 3u);
  EXPECT_EQ(st.failed, 0u);
}

/// Health degrades on windowed rejection pressure: a run of wrong-length
/// submits pushes the sliding-window rejection rate over the threshold;
/// because the window slides, the verdict is about NOW, not history.
TEST(ServeTelemetry, HealthDegradesOnRejectionPressure) {
  serve_fixture fx(511);
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.degraded_reject_rate = 0.5;
  cof::serve::server srv(fx.idx, sopt);
  EXPECT_EQ(srv.health(), cof::serve::health_state::ok) << "no data yet";
  for (usize i = 0; i < 32; ++i) {
    EXPECT_THROW((void)srv.submit("ACGT", 1), cof::index_error);
  }
  EXPECT_EQ(srv.health(), cof::serve::health_state::degraded);
  srv.shutdown();
}

/// Soak: the windowed percentiles validate against the measured per-request
/// latencies — feeding the envelope timings into a fresh histogram with the
/// same bounds reproduces the served percentiles (within the per-segment
/// microsecond truncation the envelope pays, bounded by one bucket).
TEST(ServeTelemetry, SoakWindowedPercentilesMatchMeasuredLatencies) {
  serve_fixture fx(512);
  obs::metrics_registry::global().reset();
  cof::serve::server_options sopt;
  sopt.engine = fx.warm_options();
  sopt.batch_window_us = 0;
  cof::serve::server srv(fx.idx, sopt);

  std::mt19937 rng(81);
  std::vector<u64> measured;
  constexpr usize kRequests = 40;
  for (usize i = 0; i < kRequests; ++i) {
    const auto res =
        srv.submit(fx.pool[rng() % fx.pool.size()], 1 + i % 2).get();
    measured.push_back(res.timing.total_us());
  }
  srv.shutdown();

  auto& reg = obs::metrics_registry::global();
  auto& served = reg.histogram("serve.latency_us",
                               obs::default_latency_bounds_us());
  auto& windowed = reg.windowed("serve.latency_us",
                                obs::default_latency_bounds_us());
  ASSERT_EQ(served.count(), kRequests);
  // The soak is far shorter than the 10 s window: nothing expired, so the
  // windowed view must agree with the lifetime view exactly.
  EXPECT_EQ(windowed.count(), kRequests);
  EXPECT_EQ(windowed.quantile(0.5), served.quantile(0.5));
  EXPECT_EQ(windowed.quantile(0.99), served.quantile(0.99));

  obs::histogram_metric expected(obs::default_latency_bounds_us());
  for (const u64 us : measured) expected.observe(us);
  const auto lo_hi = std::minmax_element(measured.begin(), measured.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double got = windowed.quantile(q);
    const double want = expected.quantile(q);
    // Envelope totals truncate each of 4 segments (≤ 3 us loss vs the
    // single-subtraction server measurement) — allow that plus 10% of the
    // value for samples the truncation shifts across a bucket boundary.
    EXPECT_NEAR(got, want, 4.0 + 0.1 * std::max(got, want)) << "q=" << q;
    EXPECT_GE(got + 4.0, static_cast<double>(*lo_hi.first)) << "q=" << q;
    EXPECT_LE(got, static_cast<double>(*lo_hi.second) + 4.0) << "q=" << q;
  }
}

}  // namespace
