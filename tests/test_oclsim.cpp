// Tests for the OpenCL host-API facade: object lifecycle and reference
// counting, argument marshaling, program build checks, enqueue validation,
// event profiling, runtime work-group selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "oclsim/cl.hpp"
#include "oclsim/cl_objects.hpp"

namespace {

// A trivial registered kernel for the tests: out[i] = in[i] + scalar.
void add_scalar_impl(const oclsim::arg_view& a, xpu::xitem& it) {
  int* out = a.global<int>(0);
  const int* in = a.global<const int>(1);
  const int s = a.scalar<int>(2);
  out[it.get_global_id(0)] = in[it.get_global_id(0)] + s;
}

COF_REGISTER_CL_KERNEL((oclsim::kernel_def{
    "add_scalar",
    {oclsim::arg_kind::mem, oclsim::arg_kind::mem, oclsim::arg_kind::scalar},
    /*uses_barrier=*/false, &add_scalar_impl, nullptr}))

const char* kSrc = R"(__kernel void add_scalar(__global int* o, __global const int* i, int s) {})";

struct env {
  cl_platform_id plat{};
  cl_device_id dev{};
  cl_context ctx{};
  cl_command_queue q{};
  env() {
    cl_uint n;
    EXPECT_EQ(clGetPlatformIDs(1, &plat, &n), CL_SUCCESS);
    EXPECT_EQ(clGetDeviceIDs(plat, CL_DEVICE_TYPE_GPU, 1, &dev, &n), CL_SUCCESS);
    cl_int err;
    ctx = clCreateContext(nullptr, 1, &dev, nullptr, nullptr, &err);
    EXPECT_EQ(err, CL_SUCCESS);
    q = clCreateCommandQueue(ctx, dev, CL_QUEUE_PROFILING_ENABLE, &err);
    EXPECT_EQ(err, CL_SUCCESS);
  }
  ~env() {
    clReleaseCommandQueue(q);
    clReleaseContext(ctx);
  }
};

TEST(OclPlatform, QueryReturnsOnePlatform) {
  cl_uint n = 0;
  EXPECT_EQ(clGetPlatformIDs(0, nullptr, &n), CL_SUCCESS);
  EXPECT_EQ(n, 1u);
  cl_platform_id p;
  EXPECT_EQ(clGetPlatformIDs(1, &p, nullptr), CL_SUCCESS);
  char name[64];
  EXPECT_EQ(clGetPlatformInfo(p, CL_PLATFORM_NAME, sizeof(name), name, nullptr),
            CL_SUCCESS);
  EXPECT_STREQ(name, "cof-simulated-platform");
}

TEST(OclPlatform, InvalidPlatformRejected) {
  EXPECT_EQ(clGetPlatformInfo(nullptr, CL_PLATFORM_NAME, 0, nullptr, nullptr),
            CL_INVALID_PLATFORM);
}

TEST(OclDevice, GpuAndCpuQueries) {
  cl_platform_id p;
  cl_uint n;
  ASSERT_EQ(clGetPlatformIDs(1, &p, &n), CL_SUCCESS);
  cl_device_id gpu, cpu;
  EXPECT_EQ(clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &gpu, &n), CL_SUCCESS);
  EXPECT_EQ(clGetDeviceIDs(p, CL_DEVICE_TYPE_CPU, 1, &cpu, &n), CL_SUCCESS);
  EXPECT_NE(gpu, cpu);
  cl_device_type t;
  EXPECT_EQ(clGetDeviceInfo(gpu, CL_DEVICE_TYPE, sizeof(t), &t, nullptr), CL_SUCCESS);
  EXPECT_EQ(t, static_cast<cl_device_type>(CL_DEVICE_TYPE_GPU));
  size_t wg = 0;
  EXPECT_EQ(clGetDeviceInfo(gpu, CL_DEVICE_MAX_WORK_GROUP_SIZE, sizeof(wg), &wg,
                            nullptr),
            CL_SUCCESS);
  EXPECT_GE(wg, 256u);
}

TEST(OclDevice, InfoBufferTooSmall) {
  cl_platform_id p;
  cl_uint n;
  ASSERT_EQ(clGetPlatformIDs(1, &p, &n), CL_SUCCESS);
  cl_device_id d;
  ASSERT_EQ(clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &d, &n), CL_SUCCESS);
  char tiny[2];
  EXPECT_EQ(clGetDeviceInfo(d, CL_DEVICE_NAME, sizeof(tiny), tiny, nullptr),
            CL_INVALID_VALUE);
  size_t need = 0;
  EXPECT_EQ(clGetDeviceInfo(d, CL_DEVICE_NAME, 0, nullptr, &need), CL_SUCCESS);
  EXPECT_GT(need, 2u);
}

TEST(OclLifecycle, RefCountingBalances) {
  const long before = oclsim::census::live().load();
  {
    env e;
    cl_int err;
    cl_mem m = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE, 64, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    EXPECT_EQ(clRetainMemObject(m), CL_SUCCESS);
    EXPECT_EQ(clReleaseMemObject(m), CL_SUCCESS);  // still alive (refs=1)
    EXPECT_GT(oclsim::census::live().load(), before);
    EXPECT_EQ(clReleaseMemObject(m), CL_SUCCESS);  // destroyed
  }
  EXPECT_EQ(oclsim::census::live().load(), before);
}

TEST(OclLifecycle, ContextOutlivesQueueViaRetain) {
  const long before = oclsim::census::live().load();
  cl_platform_id p;
  cl_device_id d;
  cl_uint n;
  ASSERT_EQ(clGetPlatformIDs(1, &p, &n), CL_SUCCESS);
  ASSERT_EQ(clGetDeviceIDs(p, CL_DEVICE_TYPE_GPU, 1, &d, &n), CL_SUCCESS);
  cl_int err;
  cl_context ctx = clCreateContext(nullptr, 1, &d, nullptr, nullptr, &err);
  cl_command_queue q = clCreateCommandQueue(ctx, d, 0, &err);
  // Release the app's context ref first; the queue's internal retain keeps
  // it alive until the queue goes away.
  EXPECT_EQ(clReleaseContext(ctx), CL_SUCCESS);
  EXPECT_GT(oclsim::census::live().load(), before);
  EXPECT_EQ(clReleaseCommandQueue(q), CL_SUCCESS);
  EXPECT_EQ(oclsim::census::live().load(), before);
}

TEST(OclBuffer, CopyHostPtrInitialises) {
  env e;
  std::vector<int> host{1, 2, 3, 4};
  cl_int err;
  cl_mem m = clCreateBuffer(e.ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                            host.size() * sizeof(int), host.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  std::vector<int> out(4);
  EXPECT_EQ(clEnqueueReadBuffer(e.q, m, CL_TRUE, 0, 16, out.data(), 0, nullptr,
                                nullptr),
            CL_SUCCESS);
  EXPECT_EQ(out, host);
  clReleaseMemObject(m);
}

TEST(OclBuffer, ErrorsOnBadArguments) {
  env e;
  cl_int err;
  EXPECT_EQ(clCreateBuffer(nullptr, 0, 16, nullptr, &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_CONTEXT);
  EXPECT_EQ(clCreateBuffer(e.ctx, 0, 0, nullptr, &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_BUFFER_SIZE);
  EXPECT_EQ(clCreateBuffer(e.ctx, CL_MEM_COPY_HOST_PTR, 16, nullptr, &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_VALUE);
}

TEST(OclProgram, BuildSucceedsForRegisteredKernels) {
  env e;
  cl_int err;
  cl_program prog = clCreateProgramWithSource(e.ctx, 1, &kSrc, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(prog, 1, &e.dev, "", nullptr, nullptr), CL_SUCCESS);
  clReleaseProgram(prog);
}

TEST(OclProgram, BuildFailsForUnregisteredKernel) {
  env e;
  const char* bad = "__kernel void not_registered_anywhere(void) {}";
  cl_int err;
  cl_program prog = clCreateProgramWithSource(e.ctx, 1, &bad, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(prog, 1, &e.dev, "", nullptr, nullptr),
            CL_BUILD_PROGRAM_FAILURE);
  char log[256];
  EXPECT_EQ(clGetProgramBuildInfo(prog, e.dev, CL_PROGRAM_BUILD_LOG, sizeof(log), log,
                                  nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(log).find("not_registered_anywhere"), std::string::npos);
  clReleaseProgram(prog);
}

TEST(OclKernel, CreateRequiresBuiltProgramAndSourceName) {
  env e;
  cl_int err;
  cl_program prog = clCreateProgramWithSource(e.ctx, 1, &kSrc, nullptr, &err);
  EXPECT_EQ(clCreateKernel(prog, "add_scalar", &err), nullptr);
  EXPECT_EQ(err, CL_INVALID_PROGRAM_EXECUTABLE);  // not built yet
  ASSERT_EQ(clBuildProgram(prog, 1, &e.dev, "", nullptr, nullptr), CL_SUCCESS);
  EXPECT_EQ(clCreateKernel(prog, "finder", &err), nullptr);  // not in this source
  EXPECT_EQ(err, CL_INVALID_KERNEL_NAME);
  cl_kernel k = clCreateKernel(prog, "add_scalar", &err);
  EXPECT_EQ(err, CL_SUCCESS);
  clReleaseKernel(k);
  clReleaseProgram(prog);
}

struct kernel_env : env {
  cl_program prog{};
  cl_kernel k{};
  kernel_env() {
    cl_int err;
    prog = clCreateProgramWithSource(ctx, 1, &kSrc, nullptr, &err);
    EXPECT_EQ(clBuildProgram(prog, 1, &dev, "", nullptr, nullptr), CL_SUCCESS);
    k = clCreateKernel(prog, "add_scalar", &err);
    EXPECT_EQ(err, CL_SUCCESS);
  }
  ~kernel_env() {
    clReleaseKernel(k);
    clReleaseProgram(prog);
  }
};

TEST(OclKernelArgs, ValidationAgainstSignature) {
  kernel_env e;
  int s = 5;
  cl_int err;
  cl_mem m = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE, 64, nullptr, &err);
  EXPECT_EQ(clSetKernelArg(e.k, 9, sizeof(cl_mem), &m), CL_INVALID_ARG_INDEX);
  EXPECT_EQ(clSetKernelArg(e.k, 0, sizeof(int), &s), CL_INVALID_ARG_SIZE);  // mem slot
  EXPECT_EQ(clSetKernelArg(e.k, 2, sizeof(int), nullptr), CL_INVALID_ARG_VALUE);
  EXPECT_EQ(clSetKernelArg(e.k, 0, sizeof(cl_mem), &m), CL_SUCCESS);
  EXPECT_EQ(clSetKernelArg(e.k, 2, sizeof(int), &s), CL_SUCCESS);
  clReleaseMemObject(m);
}

TEST(OclEnqueue, RejectsUnsetArgs) {
  kernel_env e;
  size_t gws = 64;
  EXPECT_EQ(clEnqueueNDRangeKernel(e.q, e.k, 1, nullptr, &gws, nullptr, 0, nullptr,
                                   nullptr),
            CL_INVALID_KERNEL_ARGS);
}

TEST(OclEnqueue, ExecutesAndProfiles) {
  kernel_env e;
  const size_t N = 128;
  std::vector<int> in(N, 10), out(N, 0);
  cl_int err;
  cl_mem din = clCreateBuffer(e.ctx, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                              N * sizeof(int), in.data(), &err);
  cl_mem dout = clCreateBuffer(e.ctx, CL_MEM_WRITE_ONLY, N * sizeof(int), nullptr,
                               &err);
  int s = 7;
  clSetKernelArg(e.k, 0, sizeof(cl_mem), &dout);
  clSetKernelArg(e.k, 1, sizeof(cl_mem), &din);
  clSetKernelArg(e.k, 2, sizeof(int), &s);
  size_t gws = N;
  cl_event ev;
  ASSERT_EQ(clEnqueueNDRangeKernel(e.q, e.k, 1, nullptr, &gws, nullptr, 0, nullptr,
                                   &ev),
            CL_SUCCESS);
  ASSERT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  cl_ulong t0, t1;
  EXPECT_EQ(clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_START, sizeof(t0), &t0,
                                    nullptr),
            CL_SUCCESS);
  EXPECT_EQ(clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_END, sizeof(t1), &t1,
                                    nullptr),
            CL_SUCCESS);
  EXPECT_GE(t1, t0);
  clReleaseEvent(ev);
  ASSERT_EQ(clEnqueueReadBuffer(e.q, dout, CL_TRUE, 0, N * sizeof(int), out.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  for (auto v : out) EXPECT_EQ(v, 17);
  clReleaseMemObject(din);
  clReleaseMemObject(dout);
}

TEST(OclEnqueue, BadWorkGroupSizeRejected) {
  kernel_env e;
  cl_int err;
  cl_mem m = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE, 64 * sizeof(int), nullptr, &err);
  int s = 1;
  clSetKernelArg(e.k, 0, sizeof(cl_mem), &m);
  clSetKernelArg(e.k, 1, sizeof(cl_mem), &m);
  clSetKernelArg(e.k, 2, sizeof(int), &s);
  size_t gws = 64, lws = 48;  // does not divide
  EXPECT_EQ(clEnqueueNDRangeKernel(e.q, e.k, 1, nullptr, &gws, &lws, 0, nullptr,
                                   nullptr),
            CL_INVALID_WORK_GROUP_SIZE);
  size_t zero_lws = 0;
  EXPECT_EQ(clEnqueueNDRangeKernel(e.q, e.k, 1, nullptr, &gws, &zero_lws, 0, nullptr,
                                   nullptr),
            CL_INVALID_WORK_GROUP_SIZE);
  EXPECT_EQ(clEnqueueNDRangeKernel(e.q, e.k, 4, nullptr, &gws, nullptr, 0, nullptr,
                                   nullptr),
            CL_INVALID_WORK_DIMENSION);
  clReleaseMemObject(m);
}

TEST(OclRegistry, ParseKernelNames) {
  const auto names = oclsim::parse_kernel_names(
      "__kernel void a(int x) {}\n kernel void b() {} \n"
      "__kernel __attribute__((reqd_work_group_size(64,1,1))) void c() {}");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(OclRegistry, FindAndEnumerate) {
  EXPECT_NE(oclsim::find_kernel("add_scalar"), nullptr);
  EXPECT_EQ(oclsim::find_kernel("missing_kernel_xyz"), nullptr);
  const auto names = oclsim::registered_kernel_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "add_scalar"), names.end());
}

TEST(OclRegistry, ProfilingModeToggle) {
  EXPECT_FALSE(oclsim::profiling_mode());
  oclsim::set_profiling_mode(true);
  EXPECT_TRUE(oclsim::profiling_mode());
  oclsim::set_profiling_mode(false);
}

TEST(OclEnqueue, ReadWriteBufferBoundsChecked) {
  env e;
  cl_int err;
  cl_mem m = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE, 16, nullptr, &err);
  char buf[32];
  EXPECT_EQ(clEnqueueReadBuffer(e.q, m, CL_TRUE, 8, 16, buf, 0, nullptr, nullptr),
            CL_INVALID_VALUE);
  EXPECT_EQ(clEnqueueWriteBuffer(e.q, m, CL_TRUE, 0, 32, buf, 0, nullptr, nullptr),
            CL_INVALID_VALUE);
  clReleaseMemObject(m);
}

}  // namespace

// -- appended: copy/fill/work-group-info coverage ----------------------------

namespace {

TEST(OclCopyBuffer, DeviceToDeviceWithOffsets) {
  env e;
  cl_int err;
  std::vector<int> init{10, 20, 30, 40};
  cl_mem src = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                              16, init.data(), &err);
  cl_mem dst = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE, 32, nullptr, &err);
  ASSERT_EQ(clEnqueueCopyBuffer(e.q, src, dst, 4, 8, 8, 0, nullptr, nullptr),
            CL_SUCCESS);
  int out[2] = {};
  ASSERT_EQ(clEnqueueReadBuffer(e.q, dst, CL_TRUE, 8, 8, out, 0, nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(out[0], 20);
  EXPECT_EQ(out[1], 30);
  EXPECT_EQ(clEnqueueCopyBuffer(e.q, src, dst, 12, 0, 8, 0, nullptr, nullptr),
            CL_INVALID_VALUE);  // source overrun
  clReleaseMemObject(src);
  clReleaseMemObject(dst);
}

TEST(OclFillBuffer, PatternFill) {
  env e;
  cl_int err;
  cl_mem m = clCreateBuffer(e.ctx, CL_MEM_READ_WRITE, 16, nullptr, &err);
  const int pattern = 0x0B0B0B0B;
  ASSERT_EQ(clEnqueueFillBuffer(e.q, m, &pattern, sizeof(pattern), 0, 16, 0,
                                nullptr, nullptr),
            CL_SUCCESS);
  int out[4];
  ASSERT_EQ(clEnqueueReadBuffer(e.q, m, CL_TRUE, 0, 16, out, 0, nullptr, nullptr),
            CL_SUCCESS);
  for (int v : out) EXPECT_EQ(v, pattern);
  // size not a multiple of the pattern
  EXPECT_EQ(clEnqueueFillBuffer(e.q, m, &pattern, sizeof(pattern), 0, 10, 0,
                                nullptr, nullptr),
            CL_INVALID_VALUE);
  clReleaseMemObject(m);
}

TEST(OclKernelWorkGroupInfo, ReportsWavefrontMultipleAndLocalMem) {
  kernel_env e;
  size_t multiple = 0;
  ASSERT_EQ(clGetKernelWorkGroupInfo(e.k, e.dev,
                                     CL_KERNEL_PREFERRED_WORK_GROUP_SIZE_MULTIPLE,
                                     sizeof(multiple), &multiple, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(multiple, 64u);  // wavefront-sized, as on GCN/CDNA
  cl_ulong lmem = 123;
  ASSERT_EQ(clGetKernelWorkGroupInfo(e.k, e.dev, CL_KERNEL_LOCAL_MEM_SIZE,
                                     sizeof(lmem), &lmem, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(lmem, 0u);  // add_scalar has no local args
}

}  // namespace
