// Minimal recursive-descent JSON parser shared by the observability tests —
// enough to validate the exporters' output (trace-event JSON, metrics
// snapshots, serve stats lines, postmortem dumps) without external
// dependencies. Throws std::runtime_error on any syntax error, which fails
// the calling test.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace testjson {

using util::usize;

struct jvalue {
  enum kind_t { j_null, j_bool, j_number, j_string, j_array, j_object };
  kind_t kind = j_null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<jvalue> arr;
  std::map<std::string, jvalue> obj;

  const jvalue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class json_parser {
 public:
  explicit json_parser(const std::string& text) : s_(text) {}

  jvalue parse() {
    jvalue v = value();
    ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }
  bool consume(const char* lit) {
    const usize n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  jvalue value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      jvalue v;
      v.kind = jvalue::j_string;
      v.str = string();
      return v;
    }
    jvalue v;
    if (consume("true")) {
      v.kind = jvalue::j_bool;
      v.b = true;
      return v;
    }
    if (consume("false")) {
      v.kind = jvalue::j_bool;
      return v;
    }
    if (consume("null")) return v;
    return number();
  }

  jvalue object() {
    jvalue v;
    v.kind = jvalue::j_object;
    expect('{');
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.obj[key] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  jvalue array() {
    jvalue v;
    v.kind = jvalue::j_array;
    expect('[');
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u escape");
          out += '?';  // code point fidelity is not under test
          pos_ += 4;
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
  }

  jvalue number() {
    const usize start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("expected a JSON value");
    jvalue v;
    v.kind = jvalue::j_number;
    v.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  usize pos_ = 0;
};

inline jvalue parse_json(const std::string& text) {
  return json_parser(text).parse();
}

/// All trace events named `name` (for documents with a "traceEvents" array).
inline std::vector<const jvalue*> events_named(const jvalue& trace,
                                               const std::string& name) {
  std::vector<const jvalue*> out;
  for (const auto& ev : trace.at("traceEvents").arr) {
    if (ev.has("name") && ev.at("name").str == name) out.push_back(&ev);
  }
  return out;
}

}  // namespace testjson
