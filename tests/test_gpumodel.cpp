// GPU-model tests: device specs, the kernel-IR compiler pipeline (builder,
// passes, register sweep, ISA sizing), occupancy rules, and the timing
// model's monotonicity properties.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include "gpumodel/builder.hpp"
#include "gpumodel/isa.hpp"
#include "gpumodel/occupancy.hpp"
#include "gpumodel/passes.hpp"
#include "gpumodel/projector.hpp"
#include "gpumodel/regalloc.hpp"
#include "gpumodel/specs.hpp"
#include "gpumodel/timing.hpp"

namespace {

using namespace gpumodel;
using cv = cof::comparer_variant;

TEST(Specs, TableSevenValues) {
  const auto& gpus = paper_gpus();
  ASSERT_EQ(gpus.size(), 3u);
  EXPECT_EQ(gpus[0].name, "RVII");
  EXPECT_EQ(gpus[0].cores, 3840u);
  EXPECT_EQ(gpus[0].compute_units(), 60u);
  EXPECT_EQ(gpus[1].cores, 4096u);
  EXPECT_EQ(gpus[2].name, "MI100");
  EXPECT_EQ(gpus[2].cores, 7680u);
  EXPECT_DOUBLE_EQ(gpus[2].peak_bw_gbs, 1228.0);
}

TEST(Specs, LookupByName) {
  EXPECT_EQ(gpu_by_name("MI60").cores, 4096u);
}

TEST(SpecsDeath, UnknownGpu) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)gpu_by_name("H100"), "unknown GPU");
}

TEST(Builder, BaseComparerHasExpectedStructure) {
  const auto k = build_comparer_base();
  EXPECT_EQ(k.count_of(op_kind::barrier), 1u);
  EXPECT_GT(k.count_of(op_kind::vmem_load), 10u);
  EXPECT_GT(k.count_of(op_kind::lds_read), 20u);
  EXPECT_EQ(k.count_of(op_kind::atomic), 2u);  // one append per strand
  EXPECT_EQ(k.lds_bytes, 23u * 2 * 5);
}

TEST(Passes, CodeLengthStrictlyDecreasesAcrossVariants) {
  util::u32 prev = ~0u;
  for (int v = 0; v < cof::kNumComparerVariants; ++v) {
    const auto k = build_comparer_variant(static_cast<cv>(v));
    const auto bytes = code_length_bytes(k);
    EXPECT_LT(bytes, prev) << "variant " << v;
    prev = bytes;
  }
}

TEST(Passes, RestrictCseRemovesOnlyDuplicateLoads) {
  auto base = build_comparer_base();
  const auto base_loads = base.count_of(op_kind::vmem_load);
  auto opt1 = base;
  pass_restrict_cse(opt1);
  const auto opt1_loads = opt1.count_of(op_kind::vmem_load);
  EXPECT_LT(opt1_loads, base_loads);
  // the duplicated per-iteration chr loads: main_unroll x 2 strands
  EXPECT_EQ(base_loads - opt1_loads, 4u * 2u);
  EXPECT_EQ(opt1.count_of(op_kind::lds_read), base.count_of(op_kind::lds_read));
}

TEST(Passes, HoistRemovesLoopInvariantLoads) {
  auto k = build_comparer_base();
  pass_restrict_cse(k);
  const auto before = k.count_of(op_kind::vmem_load);
  pass_register_hoist(k);
  const auto after = k.count_of(op_kind::vmem_load);
  // 10 loci loads -> 1, 4 flag loads -> 1 (12 removed)
  EXPECT_EQ(before - after, 12u);
}

TEST(Passes, CooperativeFetchShrinksFetchRegion) {
  auto k = build_comparer_variant(cv::opt2);
  const auto before_writes = k.count_of(op_kind::lds_write);
  pass_cooperative_fetch(k, {});
  EXPECT_LT(k.count_of(op_kind::lds_write), before_writes);
  EXPECT_EQ(k.count_of(op_kind::barrier), 1u);  // barrier preserved
}

TEST(Passes, PromotePutsPatternIntoScalarRegisters) {
  auto opt3 = build_comparer_variant(cv::opt3);
  auto opt4 = build_comparer_variant(cv::opt4);
  const auto r3 = estimate_registers(opt3);
  const auto r4 = estimate_registers(opt4);
  EXPECT_GT(r4.sgprs, r3.sgprs + 20);  // the Table X scalar-pressure jump
  EXPECT_LE(r4.vgprs, r3.vgprs);
  EXPECT_LT(opt4.count_of(op_kind::lds_read), opt3.count_of(op_kind::lds_read));
}

TEST(RegAlloc, MatchesTableXShape) {
  // Golden values for the model (paper: SGPR 64/64/64/57/82, VGPR
  // 22/22/22/10/10, occupancy 10/10/10/10/9).
  const int expect_occ[5] = {10, 10, 10, 10, 9};
  const double paper_bytes[5] = {6064, 5852, 5408, 4408, 3660};
  for (int v = 0; v < 5; ++v) {
    const auto row = resource_usage(static_cast<cv>(v));
    EXPECT_NEAR(row.sgprs, (v == 4 ? 82 : (v == 3 ? 57 : 64)), 2) << "variant " << v;
    EXPECT_NEAR(row.vgprs, (v >= 3 ? 10 : 22), 1) << "variant " << v;
    EXPECT_EQ(row.occupancy, static_cast<util::u32>(expect_occ[v])) << "variant " << v;
    // within 8% of the paper's measured bytes
    EXPECT_NEAR(static_cast<double>(row.code_bytes), paper_bytes[v], 0.08 * 6064)
        << "variant " << v;
  }
}

TEST(Occupancy, VgprLimit) {
  const auto& gpu = gpu_by_name("MI100");
  register_usage r{.vgprs = 128, .sgprs = 32};
  const auto occ = occupancy(gpu, r, 0, 256);
  EXPECT_EQ(occ.waves_per_simd, 2u);  // 256/128
  EXPECT_STREQ(occ.limiter, "vgpr");
}

TEST(Occupancy, SgprLimitReproducesTableXCliff) {
  const auto& gpu = gpu_by_name("MI100");
  register_usage r{.vgprs = 10, .sgprs = 82};
  const auto occ = occupancy(gpu, r, 0, 256);
  EXPECT_EQ(occ.waves_per_simd, 9u);  // floor(800 / roundup(82,8)=88)
  EXPECT_STREQ(occ.limiter, "sgpr");
}

TEST(Occupancy, CapAtTen) {
  const auto& gpu = gpu_by_name("RVII");
  register_usage r{.vgprs = 8, .sgprs = 16};
  EXPECT_EQ(occupancy(gpu, r, 0, 256).waves_per_simd, 10u);
}

TEST(Occupancy, LdsLimit) {
  const auto& gpu = gpu_by_name("RVII");
  register_usage r{.vgprs = 8, .sgprs = 16};
  // 32 KiB per group -> 2 groups/CU; wg 256 = 4 waves -> 8 waves/CU -> 2/SIMD
  const auto occ = occupancy(gpu, r, 32 * 1024, 256);
  EXPECT_EQ(occ.waves_per_simd, 2u);
  EXPECT_STREQ(occ.limiter, "lds");
}

TEST(Occupancy, MonotoneInRegisters) {
  const auto& gpu = gpu_by_name("MI100");
  util::u32 prev = 100;
  for (util::u32 vgprs : {16u, 32u, 64u, 128u, 256u}) {
    register_usage r{.vgprs = vgprs, .sgprs = 16};
    const auto occ = occupancy(gpu, r, 0, 256).waves_per_simd;
    EXPECT_LE(occ, prev);
    prev = occ;
  }
}

prof::event_counts sample_events() {
  prof::event_counts e;
  e[prof::ev::work_item] = 1u << 20;
  e[prof::ev::global_load] = 20u << 20;
  e[prof::ev::global_load_repeat] = 10u << 20;
  e[prof::ev::local_load] = 30u << 20;
  e[prof::ev::compare] = 16u << 20;
  e[prof::ev::loop_iter] = 16u << 20;
  return e;
}

TEST(Timing, MoreLoadsTakeLonger) {
  const auto& gpu = gpu_by_name("RVII");
  kernel_time_input in;
  in.events = sample_events();
  in.coalescing = 1.5;
  const auto t1 = kernel_time(gpu, in).total_s;
  in.events[prof::ev::global_load] *= 2;
  const auto t2 = kernel_time(gpu, in).total_s;
  EXPECT_GT(t2, t1);
}

TEST(Timing, LowerOccupancyNeverFaster) {
  const auto& gpu = gpu_by_name("RVII");
  kernel_time_input in;
  in.events = sample_events();
  in.coalescing = 1.5;
  in.waves_per_simd = 10;
  const auto t10 = kernel_time(gpu, in).total_s;
  in.waves_per_simd = 9;
  const auto t9 = kernel_time(gpu, in).total_s;
  EXPECT_GT(t9, t10);
  EXPECT_NEAR(t9 / t10, 2.0, 0.15);  // the calibrated Fig. 2 cliff
}

TEST(Timing, CoalescingReducesTime) {
  const auto& gpu = gpu_by_name("RVII");
  kernel_time_input in;
  in.events = sample_events();
  in.coalescing = 1.0;
  const auto scattered = kernel_time(gpu, in).total_s;
  in.coalescing = 48.0;
  const auto streaming = kernel_time(gpu, in).total_s;
  EXPECT_LT(streaming, scattered);
}

TEST(Timing, HigherBandwidthDeviceFasterWhenMemoryBound) {
  kernel_time_input in;
  in.events = sample_events();
  in.coalescing = 1.5;
  const auto rvii = kernel_time(gpu_by_name("RVII"), in);
  const auto mi100 = kernel_time(gpu_by_name("MI100"), in);
  ASSERT_STREQ(rvii.bound, "bandwidth");
  EXPECT_LT(mi100.total_s, rvii.total_s);
  EXPECT_NEAR(rvii.total_s / mi100.total_s, 1228.0 / 1024.0, 0.01);
}

TEST(Timing, SmallGroupsPenalised) {
  const auto& gpu = gpu_by_name("RVII");
  kernel_time_input in;
  in.events = sample_events();
  in.coalescing = 1.5;
  in.wg_size = 256;
  const auto big = kernel_time(gpu, in).total_s;
  in.wg_size = 64;
  const auto small = kernel_time(gpu, in).total_s;
  EXPECT_GT(small, big);
}

TEST(Timing, SequentialFetchPenalised) {
  const auto& gpu = gpu_by_name("RVII");
  kernel_time_input in;
  in.events = sample_events();
  in.coalescing = 1.5;
  in.sequential_fetch = false;
  const auto coop = kernel_time(gpu, in).total_s;
  in.sequential_fetch = true;
  const auto seq = kernel_time(gpu, in).total_s;
  EXPECT_GT(seq, coop);
}

TEST(Timing, TransferSecondsLinearInBytes) {
  const auto& gpu = gpu_by_name("RVII");
  const double t1 = transfer_seconds(gpu, 1u << 30, 0);
  const double t2 = transfer_seconds(gpu, 2u << 30, 0);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
  EXPECT_GT(transfer_seconds(gpu, 0, 100), 0.0);
}

TEST(EventCounts, ScaledMultipliesAll) {
  auto e = sample_events();
  auto s = e.scaled(4.0);
  EXPECT_EQ(s[prof::ev::global_load], e[prof::ev::global_load] * 4);
  EXPECT_EQ(s[prof::ev::work_item], e[prof::ev::work_item] * 4);
}

TEST(Projector, ComponentsSumToTotal) {
  prof::profiler profiler;
  profiler.record("finder", sample_events(), 1000);
  profiler.record("comparer/base", sample_events(), 1000);
  projection_input in;
  in.profile = &profiler;
  in.pipeline.h2d_bytes = 1u << 20;
  in.pipeline.d2h_bytes = 1u << 18;
  in.scale = 64;
  in.target_chunks = 10;
  in.queries = 3;
  in.host_seconds = 0.01;
  const auto proj = project_elapsed(gpu_by_name("MI60"), in);
  EXPECT_NEAR(proj.total_s,
              proj.finder_s + proj.comparer_s + proj.transfer_s + proj.launch_s +
                  proj.host_s,
              1e-12);
  EXPECT_EQ(proj.kernels.size(), 2u);
  EXPECT_GT(proj.comparer_s, 0.0);
}

TEST(Projector, Opt4SlowerThanOpt3) {
  auto ev = sample_events();
  const auto t3 = project_comparer(gpu_by_name("RVII"), ev, 64, 256, cv::opt3);
  const auto t4 = project_comparer(gpu_by_name("RVII"), ev, 64, 256, cv::opt4);
  EXPECT_GT(t4.time.total_s, 1.5 * t3.time.total_s);
  EXPECT_EQ(t4.occ.waves_per_simd, 9u);
  EXPECT_EQ(t3.occ.waves_per_simd, 10u);
}

TEST(Isa, MixAccountsAllOps) {
  const auto k = build_comparer_base();
  const auto m = instruction_mix(k);
  EXPECT_EQ(m.total, k.instruction_count());
  EXPECT_GT(m.vcmp, 0u);
  EXPECT_GT(m.lds, 0u);
  EXPECT_EQ(m.barrier, 1u);
}

TEST(Isa, FinderSmallerThanComparer) {
  EXPECT_LT(code_length_bytes(build_finder()), code_length_bytes(build_comparer_base()));
}

}  // namespace

// -- appended: IR dump coverage ----------------------------------------------

namespace {

TEST(KirDump, ListsOpsAndMetadata) {
  const auto k = build_comparer_base();
  const auto text = gpumodel::dump(k);
  EXPECT_NE(text.find("kernel comparer"), std::string::npos);
  EXPECT_NE(text.find("lds="), std::string::npos);
  EXPECT_NE(text.find("vmem_load"), std::string::npos);
  EXPECT_NE(text.find("[loci[i]]"), std::string::npos);
  EXPECT_NE(text.find("barrier"), std::string::npos);
  EXPECT_NE(text.find("loop-invariant"), std::string::npos);
}

TEST(KirDump, Opt4ShowsScalarDefs) {
  const auto k = build_comparer_variant(cv::opt4);
  const auto text = gpumodel::dump(k);
  EXPECT_NE(text.find(" s"), std::string::npos);  // scalar register defs
}

}  // namespace

#include "gpumodel/listing.hpp"

namespace {

TEST(Listing, OffsetsMatchIsaModel) {
  for (int v = 0; v < 5; ++v) {
    const auto k = build_comparer_variant(static_cast<cv>(v));
    const auto text = gpumodel::assembly_listing(k);
    // The final s_endpgm line's offset must equal code_length - 4.
    const auto pos = text.rfind("0x");
    const auto offset = std::stoul(text.substr(pos + 2, 4), nullptr, 16);
    EXPECT_EQ(offset, code_length_bytes(k) - 4u) << "variant " << v;
    EXPECT_NE(text.find("s_barrier"), std::string::npos);
    EXPECT_NE(text.find("global_load_ubyte"), std::string::npos);
    EXPECT_NE(text.find("ds_read_u8"), std::string::npos);
  }
}

TEST(Listing, Opt4ShowsScalarByteExtract) {
  const auto text = gpumodel::assembly_listing(build_comparer_variant(cv::opt4));
  EXPECT_NE(text.find("s_bfe_u32"), std::string::npos);
}

}  // namespace

#include "gpumodel/roofline.hpp"

namespace {

TEST(Roofline, ScatteredComparerIsMemoryBound) {
  const auto& gpu = gpu_by_name("RVII");
  // Low intensity: 1 op per 64-byte transaction.
  auto p = place_on_roofline(gpu, "comparer", 1e9, 64e9, 1.0);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_LT(p.bw_ceiling_gops, p.peak_gops);
  EXPECT_NEAR(p.arithmetic_intensity, 1.0 / 64.0, 1e-12);
}

TEST(Roofline, HighIntensityIsComputeBound) {
  const auto& gpu = gpu_by_name("RVII");
  auto p = place_on_roofline(gpu, "k", 1e12, 1e9, 1.0);
  EXPECT_FALSE(p.memory_bound);
}

TEST(Roofline, FromEventsUsesCoalescing) {
  const auto& gpu = gpu_by_name("MI100");
  prof::event_counts e;
  e[prof::ev::compare] = 1000;
  e[prof::ev::loop_iter] = 1000;
  e[prof::ev::global_load] = 640;
  const auto scattered = roofline_from_events(gpu, "k", e, 1.0, 1.0);
  const auto coalesced = roofline_from_events(gpu, "k", e, 64.0, 1.0);
  EXPECT_GT(coalesced.arithmetic_intensity, scattered.arithmetic_intensity);
}

TEST(Roofline, FormatListsKernels) {
  const auto& gpu = gpu_by_name("RVII");
  auto p = place_on_roofline(gpu, "finder", 1e9, 1e9, 0.5);
  const auto text = format_roofline(gpu, {p});
  EXPECT_NE(text.find("finder"), std::string::npos);
  EXPECT_NE(text.find("Roofline (RVII)"), std::string::npos);
}

}  // namespace
