// Streaming-reader and streaming-search tests: the disk-chunked path must
// produce exactly the in-memory results with O(max_chunk) host memory.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include <filesystem>
#include <fstream>

#include "core/engine_stream.hpp"
#include "genome/chunker.hpp"
#include "genome/fasta_stream.hpp"
#include "genome/synth.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;

struct temp_dir {
  fs::path path;
  temp_dir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("cof_stream_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~temp_dir() { fs::remove_all(path); }
};

TEST(FastaStream, ReadsRecordsAndBlocks) {
  temp_dir dir;
  const auto file = dir.path / "s.fa";
  std::ofstream(file) << ">chr1 desc\nACGT\nacgt\n>chr2\nTTTT\n";
  genome::fasta_stream s(file.string());
  ASSERT_TRUE(s.next_record());
  EXPECT_EQ(s.record_name(), "chr1");
  std::string block;
  EXPECT_EQ(s.read_bases(block, 3), 3u);
  EXPECT_EQ(block, "ACG");
  EXPECT_EQ(s.read_bases(block, 100), 5u);  // rest of the record
  EXPECT_EQ(block, "ACGTACGT");
  EXPECT_EQ(s.read_bases(block, 10), 0u);  // exhausted
  ASSERT_TRUE(s.next_record());
  EXPECT_EQ(s.record_name(), "chr2");
  EXPECT_EQ(s.read_all(), "TTTT");
  EXPECT_FALSE(s.next_record());
}

TEST(FastaStream, SkipRecordWithoutReading) {
  temp_dir dir;
  const auto file = dir.path / "s.fa";
  std::ofstream(file) << ">a\nAAAA\nCCCC\n>b\nGG\n";
  genome::fasta_stream s(file.string());
  ASSERT_TRUE(s.next_record());
  ASSERT_TRUE(s.next_record());  // skip a's data entirely
  EXPECT_EQ(s.record_name(), "b");
  EXPECT_EQ(s.read_all(), "GG");
}

TEST(FastaStream, HandlesCommentsBlanksAndCrlf) {
  temp_dir dir;
  const auto file = dir.path / "s.fa";
  std::ofstream(file) << "; comment\r\n\r\n>x\r\nAC\r\n; mid\r\nGT\r\n";
  genome::fasta_stream s(file.string());
  ASSERT_TRUE(s.next_record());
  EXPECT_EQ(s.read_all(), "ACGT");
}

TEST(FastaStream, AgreesWithInMemoryParserOnRandomFiles) {
  util::rng rng(71);
  temp_dir dir;
  for (int trial = 0; trial < 10; ++trial) {
    // Random records with random line widths.
    std::vector<genome::chromosome> recs;
    const auto nrecs = 1 + rng.next_below(4);
    for (util::u64 r = 0; r < nrecs; ++r) {
      genome::chromosome c;
      c.name = "r" + std::to_string(r);
      const auto len = rng.next_below(5000);
      for (util::u64 i = 0; i < len; ++i) c.seq += "ACGTN"[rng.next_below(5)];
      recs.push_back(std::move(c));
    }
    const auto file = dir.path / ("t" + std::to_string(trial) + ".fa");
    genome::write_fasta_file(file.string(), recs, 1 + rng.next_below(100));

    genome::fasta_stream s(file.string());
    for (const auto& expect : recs) {
      ASSERT_TRUE(s.next_record());
      EXPECT_EQ(s.record_name(), expect.name);
      // Drain in randomly sized blocks.
      std::string got;
      while (s.read_bases(got, 1 + rng.next_below(700)) != 0) {
      }
      EXPECT_EQ(got, expect.seq);
    }
    EXPECT_FALSE(s.next_record());
  }
}

TEST(FastaStreamDeath, MissingFile) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(genome::fasta_stream("/no/such.fa"), "cannot open");
}

TEST(FastaFilesAt, SingleFileAndDirectory) {
  temp_dir dir;
  std::ofstream(dir.path / "b.fa") << ">b\nA\n";
  std::ofstream(dir.path / "a.fasta") << ">a\nC\n";
  std::ofstream(dir.path / "no.txt") << "x";
  const auto files = genome::fasta_files_at(dir.path.string());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("a.fasta"), std::string::npos);
  const auto single = genome::fasta_files_at((dir.path / "b.fa").string());
  ASSERT_EQ(single.size(), 1u);
}

// --- streaming search --------------------------------------------------------

genome::genome_t stream_genome(util::u64 seed) {
  genome::synth_params p;
  p.assembly = "stream-test";
  p.chromosomes = {{"chrA", 40000}, {"chrB", 15000}};
  p.seed = seed;
  return genome::generate(p);
}

TEST(StreamingSearch, MatchesInMemorySearch) {
  temp_dir dir;
  auto g = stream_genome(61);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 5, 1, 99);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 7000};
  const auto mem = cof::run_search(cfg, g, opt);
  const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);
  EXPECT_EQ(streamed.records, mem.records);
  ASSERT_EQ(streamed.chrom_names.size(), 2u);
  EXPECT_EQ(streamed.chrom_names[0], "chrA");
  EXPECT_EQ(streamed.streamed_bases, g.total_bases());
  EXPECT_LE(streamed.peak_chunk_bytes, 7000u);
}

TEST(StreamingSearch, DirectoryInput) {
  temp_dir dir;
  auto g = stream_genome(62);
  genome::write_fasta_file((dir.path / "a_chrA.fa").string(), {g.chroms[0]});
  genome::write_fasta_file((dir.path / "b_chrB.fa").string(), {g.chroms[1]});
  auto cfg = cof::parse_input(cof::example_input("<dir>"));
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto mem = cof::run_search(cfg, g, opt);
  const auto streamed = cof::run_search_streaming(cfg, dir.path.string(), opt);
  EXPECT_EQ(streamed.records, mem.records);
}

class StreamChunking : public ::testing::TestWithParam<util::usize> {};

TEST_P(StreamChunking, ChunkSizeInvariant) {
  temp_dir dir;
  auto g = stream_genome(63);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);
  const auto reference =
      cof::run_search(cfg, g, {.backend = cof::backend_kind::serial});
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .max_chunk = GetParam()};
  const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);
  EXPECT_EQ(streamed.records, reference.records) << "chunk " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Chunks, StreamChunking,
                         ::testing::Values(512u, 1777u, 8192u, 100000u));

TEST(StreamingSearch, SiteAtExactChunkBoundary) {
  temp_dir dir;
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(4000, 'T')});
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  const util::usize chunk_size = 1000;
  g.chroms[0].seq.replace(chunk_size - 5, site.size(), site);  // straddles
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const auto streamed = cof::run_search_streaming(
      cfg, file.string(),
      {.backend = cof::backend_kind::sycl, .max_chunk = chunk_size});
  bool found = false;
  for (const auto& rec : streamed.records) {
    found |= rec.query_index == 0 && rec.position == chunk_size - 5 &&
             rec.mismatches == 0;
  }
  EXPECT_TRUE(found);
}

TEST(StreamingSearchDeath, SerialBackendRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto cfg = cof::parse_input(cof::example_input("<x>"));
  EXPECT_DEATH((void)cof::run_search_streaming(
                   cfg, "/tmp", {.backend = cof::backend_kind::serial}),
               "serial");
}

}  // namespace

// -- appended: streaming-vs-memory differential fuzz --------------------------

namespace {

class StreamFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StreamFuzz, StreamedEqualsInMemoryOnRandomFiles) {
  util::rng rng(3000 + static_cast<util::u64>(GetParam()));
  temp_dir dir;
  // Random multi-record genome with gaps, random wrap width, random chunking.
  genome::genome_t g;
  const auto nrecs = 1 + rng.next_below(4);
  for (util::u64 rix = 0; rix < nrecs; ++rix) {
    genome::chromosome c;
    c.name = "f" + std::to_string(rix);
    const auto len = 100 + rng.next_below(20000);
    for (util::u64 i = 0; i < len; ++i) {
      c.seq += rng.next_bool(0.02) ? 'N' : "ACGT"[rng.next_below(4)];
    }
    g.chroms.push_back(std::move(c));
  }
  const auto file = dir.path / "fuzz.fa";
  genome::write_fasta_file(file.string(), g.chroms, 1 + rng.next_below(120));

  auto cfg = cof::parse_input(cof::example_input("<fuzz>"));
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .max_chunk = 600 + rng.next_below(30000)};
  const auto mem = cof::run_search(cfg, g, opt);
  const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);
  ASSERT_EQ(streamed.records, mem.records)
      << "seed=" << GetParam() << " chunk=" << opt.max_chunk;
  EXPECT_EQ(streamed.streamed_bases, g.total_bases());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamFuzz, ::testing::Range(1, 9));

}  // namespace

// -- appended: async two-deep pipeline ----------------------------------------

namespace {

/// The async pipeline (decode overlap + single batched comparer launch +
/// deferred downloads + pool-side formatting) must be bit-identical to the
/// synchronous per-query loop, including chrom bookkeeping and chunk-boundary
/// overlap sites.
TEST(StreamingAsync, MatchesSynchronousLoop) {
  temp_dir dir;
  auto g = stream_genome(64);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 7, 2, 17);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  cof::engine_options async_opt{.backend = cof::backend_kind::sycl,
                                .max_chunk = 7000};
  async_opt.stream_async = true;
  cof::engine_options sync_opt = async_opt;
  sync_opt.stream_async = false;

  const auto a = cof::run_search_streaming(cfg, file.string(), async_opt);
  const auto s = cof::run_search_streaming(cfg, file.string(), sync_opt);
  EXPECT_EQ(a.records, s.records);
  EXPECT_EQ(a.chrom_names, s.chrom_names);
  EXPECT_EQ(a.streamed_bases, s.streamed_bases);
  EXPECT_EQ(a.metrics.chunks, s.metrics.chunks);
  EXPECT_EQ(a.peak_chunk_bytes, s.peak_chunk_bytes);
}

/// Per-chunk comparer launches drop from num_queries to exactly 1 on the
/// async path: for every chunk with finder hits, the sync loop launches once
/// per query, the async path once total.
TEST(StreamingAsync, SingleBatchedComparerLaunchPerChunk) {
  temp_dir dir;
  auto g = stream_genome(65);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  ASSERT_EQ(cfg.queries.size(), 3u);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  opt.stream_async = true;
  const auto a = cof::run_search_streaming(cfg, file.string(), opt);
  opt.stream_async = false;
  const auto s = cof::run_search_streaming(cfg, file.string(), opt);

  // Both paths chunk identically, so chunks-with-hits agree; the async count
  // is one launch per such chunk, the sync count num_queries per chunk.
  EXPECT_EQ(a.metrics.pipeline.comparer_launches * cfg.queries.size(),
            s.metrics.pipeline.comparer_launches);
  EXPECT_LE(a.metrics.pipeline.comparer_launches, a.metrics.chunks);
  EXPECT_EQ(a.metrics.pipeline.finder_launches, s.metrics.pipeline.finder_launches);
  EXPECT_EQ(a.records, s.records);
}

/// Every device backend must produce the serial reference's records through
/// the async streaming path (exercises the batched launch/fetch protocol of
/// each facade: buffer SYCL, USM, OpenCL comparer_multi, twobit fallback).
class StreamBackends : public ::testing::TestWithParam<cof::backend_kind> {};

TEST_P(StreamBackends, AsyncStreamedMatchesSerialReference) {
  temp_dir dir;
  auto g = stream_genome(66);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = cfg.queries[1].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 4, 1, 23);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  const auto reference =
      cof::run_search(cfg, g, {.backend = cof::backend_kind::serial});
  cof::engine_options opt{.backend = GetParam(), .max_chunk = 9000};
  opt.stream_async = true;
  const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);
  EXPECT_EQ(streamed.records, reference.records);
}

INSTANTIATE_TEST_SUITE_P(Backends, StreamBackends,
                         ::testing::Values(cof::backend_kind::opencl,
                                           cof::backend_kind::sycl,
                                           cof::backend_kind::sycl_usm,
                                           cof::backend_kind::sycl_twobit));

/// Chunk-boundary site straddling a chunk edge must survive the async path's
/// overlap carry (same planted-site setup as the synchronous boundary test).
TEST(StreamingAsync, SiteAtExactChunkBoundary) {
  temp_dir dir;
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(4000, 'T')});
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  const util::usize chunk_size = 1000;
  g.chroms[0].seq.replace(chunk_size - 5, site.size(), site);  // straddles
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  cof::engine_options opt{.backend = cof::backend_kind::sycl,
                          .max_chunk = chunk_size};
  opt.stream_async = true;
  const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);
  bool found = false;
  for (const auto& rec : streamed.records) {
    found |= rec.query_index == 0 && rec.position == chunk_size - 5 &&
             rec.mismatches == 0;
  }
  EXPECT_TRUE(found);
}

}  // namespace

// -- appended: chunk-boundary regression, overflow guard, multi-queue ---------

namespace {

/// Regression: a record whose length is exactly max_chunk plus a whole
/// number of strides (stride = max_chunk - overlap) hits EOF exactly on a
/// chunk boundary. The streaming reader used to emit the carried overlap as
/// a degenerate trailing chunk — bases already scanned as the tail of the
/// previous chunk — inflating metrics.chunks past the in-memory chunker's
/// count. Both streaming paths must now match genome::make_chunks exactly.
class StreamBoundary : public ::testing::TestWithParam<cof::backend_kind> {};

TEST_P(StreamBoundary, ExactMultipleRecordHasNoCarryOnlyChunk) {
  temp_dir dir;
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const util::usize chunk_size = 1000;
  const util::usize overlap = cfg.pattern.size() - 1;
  // One full chunk plus one full stride: EOF lands exactly where the second
  // chunk ends, leaving only the carried overlap behind.
  const util::usize len = chunk_size + (chunk_size - overlap);
  util::rng rng(991);
  genome::genome_t g;
  genome::chromosome c;
  c.name = "exact";
  for (util::usize i = 0; i < len; ++i) c.seq += "ACGT"[rng.next_below(4)];
  g.chroms.push_back(std::move(c));
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  const auto chunks = genome::make_chunks(g, chunk_size, overlap);
  ASSERT_EQ(chunks.size(), 2u);  // the in-memory chunker's (correct) count

  const auto mem =
      cof::run_search(cfg, g, {.backend = cof::backend_kind::serial});
  for (const bool async : {false, true}) {
    cof::engine_options opt{.backend = GetParam(), .max_chunk = chunk_size};
    opt.stream_async = async;
    const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);
    EXPECT_EQ(streamed.metrics.chunks, chunks.size()) << "async=" << async;
    EXPECT_EQ(streamed.streamed_bases, len) << "async=" << async;
    EXPECT_EQ(streamed.records, mem.records) << "async=" << async;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, StreamBoundary,
                         ::testing::Values(cof::backend_kind::opencl,
                                           cof::backend_kind::sycl,
                                           cof::backend_kind::sycl_usm,
                                           cof::backend_kind::sycl_twobit));

/// An entry buffer sized below the hit count overflows; the kernel counter
/// keeps advancing past the capacity (only stores are dropped), so the host
/// learns the true demand. The streaming engine now RECOVERS: the chunk is
/// retried with a grown allocation and the results must be byte-identical
/// to worst-case sizing. With recovery disabled it stays a clean error.
class StreamOverflow : public ::testing::TestWithParam<cof::backend_kind> {};

TEST_P(StreamOverflow, UndersizedEntryBufferRecovers) {
  temp_dir dir;
  auto g = stream_genome(67);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);
  cof::engine_options opt{.backend = GetParam(), .max_chunk = 9000};
  const auto worst = cof::run_search_streaming(cfg, file.string(), opt);
  opt.max_entries = 2;  // far below the PAM hit count of a 55 kb random genome
  const auto capped = cof::run_search_streaming(cfg, file.string(), opt);
  EXPECT_EQ(capped.records, worst.records);
  EXPECT_GE(capped.metrics.recovery.overflow_retries, 1u);
  EXPECT_GE(capped.metrics.recovery.recovered_overflows, 1u);
  EXPECT_EQ(worst.metrics.recovery.overflow_retries, 0u);
}

TEST_P(StreamOverflow, UndersizedEntryBufferThrowsWithRecoveryOff) {
  temp_dir dir;
  auto g = stream_genome(67);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);
  cof::engine_options opt{.backend = GetParam(), .max_chunk = 9000};
  opt.max_entries = 2;
  opt.overflow_recovery = false;
  EXPECT_THROW((void)cof::run_search_streaming(cfg, file.string(), opt),
               cof::entry_overflow_error);
}

INSTANTIATE_TEST_SUITE_P(Backends, StreamOverflow,
                         ::testing::Values(cof::backend_kind::opencl,
                                           cof::backend_kind::sycl,
                                           cof::backend_kind::sycl_usm,
                                           cof::backend_kind::sycl_twobit));

/// The non-streamed engine path checks the same capacity.
TEST(StreamOverflow, RunSearchUndersizedEntryBufferDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto g = stream_genome(69);
  auto cfg = cof::parse_input(cof::example_input("<synth>"));
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  opt.max_entries = 2;
  EXPECT_DEATH((void)cof::run_search(cfg, g, opt), "entry-buffer overflow");
}

/// A max_entries cap that is merely generous (above the actual hit count but
/// below worst-case sizing) must change nothing about the results.
TEST(StreamOverflow, GenerousCapMatchesWorstCaseSizing) {
  temp_dir dir;
  auto g = stream_genome(67);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);
  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 9000};
  const auto worst = cof::run_search_streaming(cfg, file.string(), opt);
  opt.max_entries = util::usize{1} << 20;
  const auto capped = cof::run_search_streaming(cfg, file.string(), opt);
  EXPECT_EQ(capped.records, worst.records);
}

/// Multi-queue streaming: chunks fan out over the bounded queue to
/// num_queues device pipelines, records spill per queue and k-way merge back
/// — the output must be byte-identical to num_queues == 1 and to the
/// in-memory search for any queue count and interleaving.
class StreamMultiQueue : public ::testing::TestWithParam<util::usize> {};

TEST_P(StreamMultiQueue, ByteIdenticalForAnyQueueCount) {
  temp_dir dir;
  auto g = stream_genome(68);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = cfg.queries[0].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 6, 2, 31);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 5000};
  const auto mem = cof::run_search(cfg, g, opt);
  opt.stream_async = false;
  const auto sync = cof::run_search_streaming(cfg, file.string(), opt);
  opt.stream_async = true;
  opt.num_queues = GetParam();
  const auto streamed = cof::run_search_streaming(cfg, file.string(), opt);

  EXPECT_EQ(streamed.records, mem.records);
  EXPECT_EQ(streamed.chrom_names, sync.chrom_names);
  EXPECT_EQ(streamed.metrics.chunks, sync.metrics.chunks);
  ASSERT_EQ(streamed.metrics.per_queue.size(), GetParam());
  EXPECT_EQ(streamed.total_records, streamed.records.size());
  EXPECT_GE(streamed.spill_runs, 1u);
  ASSERT_FALSE(streamed.records.empty());
  // Bounded-memory accounting: the async path holds at most one formatted
  // batch per queue at a time, so its peak must undercut the sync loop's
  // whole accumulated record set.
  EXPECT_GT(streamed.peak_record_bytes, 0u);
  EXPECT_LT(streamed.peak_record_bytes, sync.peak_record_bytes);
}

INSTANTIATE_TEST_SUITE_P(Queues, StreamMultiQueue,
                         ::testing::Values(util::usize{1}, util::usize{2},
                                           util::usize{4}));

/// The record_sink overload streams each canonical record exactly once and
/// leaves outcome.records empty — output never accumulates in host memory.
TEST(StreamingSearch, RecordSinkReceivesCanonicalRecords) {
  temp_dir dir;
  auto g = stream_genome(70);
  auto cfg = cof::parse_input(cof::example_input("<file>"));
  const std::string guide = cfg.queries[2].seq.substr(0, 20) + "NGG";
  genome::plant_sites(g, guide, cfg.pattern, 5, 1, 43);
  const auto file = dir.path / "g.fa";
  genome::write_fasta_file(file.string(), g.chroms);

  cof::engine_options opt{.backend = cof::backend_kind::sycl, .max_chunk = 6000};
  const auto mem = cof::run_search(cfg, g, opt);

  opt.num_queues = 2;
  std::vector<cof::ot_record> sunk;
  const auto streamed = cof::run_search_streaming(
      cfg, file.string(), opt,
      [&sunk](cof::ot_record&& r) { sunk.push_back(std::move(r)); });
  EXPECT_TRUE(streamed.records.empty());
  EXPECT_EQ(streamed.total_records, sunk.size());
  EXPECT_EQ(sunk, mem.records);

  opt.stream_async = false;
  opt.num_queues = 1;
  std::vector<cof::ot_record> sunk_sync;
  const auto s = cof::run_search_streaming(
      cfg, file.string(), opt,
      [&sunk_sync](cof::ot_record&& r) { sunk_sync.push_back(std::move(r)); });
  EXPECT_TRUE(s.records.empty());
  EXPECT_EQ(sunk_sync, mem.records);
}

}  // namespace
