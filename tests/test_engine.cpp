// End-to-end engine tests: configured-genome loading, serial reference
// behaviour, record content, and full-text output.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "genome/synth.hpp"

namespace {

using namespace cof;

TEST(Engine, LoadConfiguredGenomeSynthUri) {
  search_config cfg;
  cfg.genome_path = "synth:hg19:32768";
  auto g = load_configured_genome(cfg);
  EXPECT_EQ(g.assembly, "hg19-synth");
  EXPECT_GT(g.total_bases(), 0u);
}

TEST(Engine, SerialFindsHandConstructedSites) {
  // A fully controlled genome: background of T's (never matches the PAM
  // NRG: needs R=A/G then G), with known sites written in.
  genome::genome_t g;
  g.chroms.push_back({"chr1", std::string(500, 'T')});
  g.chroms.push_back({"chr2", std::string(300, 'T')});
  const std::string query = "GGCCGACCTGTCGCTGACGCNNN";
  const std::string exact = "GGCCGACCTGTCGCTGACGCTGG";  // 0 mismatches, PAM TGG
  std::string two_mm = exact;
  two_mm[0] = 'T';
  two_mm[5] = 'C';  // G->T, A->C: 2 mismatches
  g.chroms[0].seq.replace(100, exact.size(), exact);
  g.chroms[1].seq.replace(50, two_mm.size(), two_mm);
  // Reverse-strand site on chr1: write rc(exact).
  g.chroms[0].seq.replace(300, exact.size(), genome::reverse_complement(exact));

  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  cfg.queries = {{query, 5}};
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});

  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].chrom_index, 0u);
  EXPECT_EQ(r.records[0].position, 100u);
  EXPECT_EQ(r.records[0].direction, '+');
  EXPECT_EQ(r.records[0].mismatches, 0);
  EXPECT_EQ(r.records[0].site, exact);

  EXPECT_EQ(r.records[1].position, 300u);
  EXPECT_EQ(r.records[1].direction, '-');
  EXPECT_EQ(r.records[1].mismatches, 0);
  EXPECT_EQ(r.records[1].site, exact);  // rendered strand-oriented

  EXPECT_EQ(r.records[2].chrom_index, 1u);
  EXPECT_EQ(r.records[2].mismatches, 2);
  EXPECT_EQ(r.records[2].site, "tGCCGcCCTGTCGCTGACGCTGG");
}

TEST(Engine, MismatchThresholdExcludes) {
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(200, 'T')});
  std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  site[0] = 'A';
  site[1] = 'A';
  site[2] = 'A';  // 3 mismatches vs query0
  g.chroms[0].seq.replace(60, site.size(), site);
  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  cfg.queries = {{"GGCCGACCTGTCGCTGACGCNNN", 2}};
  auto r2 = run_search(cfg, g, {.backend = backend_kind::serial});
  EXPECT_TRUE(r2.records.empty());
  cfg.queries[0].max_mismatches = 3;
  auto r3 = run_search(cfg, g, {.backend = backend_kind::serial});
  ASSERT_EQ(r3.records.size(), 1u);
  EXPECT_EQ(r3.records[0].mismatches, 3);
}

TEST(Engine, MultipleQueriesIndexedIndependently) {
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(400, 'T')});
  const std::string siteA = "GGCCGACCTGTCGCTGACGCTGG";  // exact for query 0
  const std::string siteB = "CGCCAGCGTCAGCGACAGGTAGG";  // exact for query 1
  g.chroms[0].seq.replace(50, siteA.size(), siteA);
  g.chroms[0].seq.replace(200, siteB.size(), siteB);
  auto cfg = parse_input(example_input("<mem>"));
  for (auto& q : cfg.queries) q.max_mismatches = 0;
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].query_index, 0u);
  EXPECT_EQ(r.records[0].position, 50u);
  EXPECT_EQ(r.records[1].query_index, 1u);
  EXPECT_EQ(r.records[1].position, 200u);
}

TEST(Engine, PalindromicSiteReportsBothStrands) {
  // A site whose forward text matches the PAM on both strands.
  genome::genome_t g;
  g.chroms.push_back({"chr", std::string(100, 'T')});
  // pattern NGG fw needs GG at 1,2; rc(NGG)=CCN needs CC at 0,1.
  g.chroms[0].seq.replace(40, 4, "CCGG");  // pos 40: "CCG" rc-hit; pos 41: "CGG" fw-hit
  search_config cfg;
  cfg.genome_path = "<mem>";
  cfg.pattern = "NGG";
  cfg.queries = {{"NNN", 0}};
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});
  // With an all-N query every PAM site reports; check strand bookkeeping.
  bool fw = false, rc = false;
  for (const auto& rec : r.records) {
    if (rec.direction == '+') fw = true;
    if (rec.direction == '-') rc = true;
  }
  EXPECT_TRUE(fw);
  EXPECT_TRUE(rc);
}

TEST(Engine, FormatIntegration) {
  genome::genome_t g;
  g.chroms.push_back({"chr7", std::string(120, 'T')});
  const std::string site = "GGCCGACCTGTCGCTGACGCTGG";
  g.chroms[0].seq.replace(33, site.size(), site);
  auto cfg = parse_input(example_input("<mem>"));
  auto r = run_search(cfg, g, {.backend = backend_kind::serial});
  std::vector<std::string> qseqs;
  for (const auto& q : cfg.queries) qseqs.push_back(q.seq);
  const auto text = format_records(r.records, qseqs, g);
  EXPECT_NE(text.find("GGCCGACCTGTCGCTGACGCNNN\tchr7\t33\t"), std::string::npos);
  EXPECT_NE(text.find("\t+\t0\n"), std::string::npos);
}

TEST(Engine, BackendNames) {
  EXPECT_STREQ(backend_name(backend_kind::serial), "serial");
  EXPECT_STREQ(backend_name(backend_kind::opencl), "opencl");
  EXPECT_STREQ(backend_name(backend_kind::sycl), "sycl");
}

TEST(Engine, EmptyGenomeChromosome) {
  genome::genome_t g;
  g.chroms.push_back({"empty", ""});
  g.chroms.push_back({"ok", std::string(100, 'T')});
  auto cfg = parse_input(example_input("<mem>"));
  for (auto backend : {backend_kind::serial, backend_kind::sycl}) {
    auto r = run_search(cfg, g, {.backend = backend});
    EXPECT_TRUE(r.records.empty());
  }
}

}  // namespace
