// Direct kernel-level tests: finder and comparer launched on the xpu engine
// with crafted inputs, plus counting-policy checks that the optimisation
// variants reduce exactly the accesses the paper says they do.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/kernels.hpp"
#include "core/kernels_swar.hpp"
#include "core/pattern.hpp"
#include "genome/iupac.hpp"
#include "util/rng.hpp"
#include "xpu/device.hpp"

namespace {

using namespace cof;

xpu::device& dev() {
  static xpu::device d("kernels", 1);
  return d;
}

struct finder_run {
  std::vector<u32> loci;
  std::vector<char> flags;
};

finder_run run_finder(const std::string& chunk, const device_pattern& pat,
                      usize wg = 16, bool use_mask = false) {
  const u32 chrsize = static_cast<u32>(chunk.size() - pat.plen + 1);
  std::vector<u32> loci(chunk.size(), 0);
  std::vector<char> flags(chunk.size(), -1);
  u32 count = 0;

  xpu::launch_config cfg;
  cfg.global[0] = util::round_up<usize>(chrsize, wg);
  cfg.local[0] = wg;
  cfg.local_mem_bytes =
      pat.device_chars() * (1 + sizeof(i32)) + pat.mask.size() * sizeof(u16) + 128;
  cfg.uses_barrier = true;
  finder_args a;
  a.chr = chunk.data();
  a.pat = pat.data();
  a.pat_index = pat.index_data();
  a.pat_mask = pat.mask_data();
  a.chrsize = chrsize;
  a.plen = pat.plen;
  a.loci = loci.data();
  a.flag = flags.data();
  a.entrycount = &count;
  dev().run(cfg, [&](xpu::xitem& it) {
    char* base = it.local_mem_base();
    const usize idx_off = util::round_up<usize>(pat.device_chars(), 8);
    const usize mask_off =
        util::round_up<usize>(idx_off + pat.index.size() * sizeof(i32), 8);
    a.l_pat = base;
    a.l_pat_index = reinterpret_cast<i32*>(base + idx_off);
    a.l_pat_mask = reinterpret_cast<u16*>(base + mask_off);
    if (use_mask) {
      finder_kernel_mask<direct_mem>(it, a);
    } else {
      finder_kernel<direct_mem>(it, a);
    }
  });

  finder_run r;
  for (u32 i = 0; i < count; ++i) {
    r.loci.push_back(loci[i]);
    r.flags.push_back(flags[i]);
  }
  // atomic append order is nondeterministic across groups; canonicalise
  std::vector<std::pair<u32, char>> z;
  for (u32 i = 0; i < count; ++i) z.emplace_back(r.loci[i], r.flags[i]);
  std::sort(z.begin(), z.end());
  for (u32 i = 0; i < count; ++i) {
    r.loci[i] = z[i].first;
    r.flags[i] = z[i].second;
  }
  return r;
}

TEST(FinderKernel, FindsForwardPamSite) {
  //            pattern NNG: G required at position 2
  const auto pat = make_pattern("NNG");
  //                   012345
  const auto r = run_finder("TTGTTT", pat);
  // site at 0: "TTG" matches fw; rc(pattern)=CNN -> needs C at 0.
  ASSERT_EQ(r.loci.size(), 1u);
  EXPECT_EQ(r.loci[0], 0u);
  EXPECT_EQ(r.flags[0], 1);  // forward only
}

TEST(FinderKernel, FindsReversePamSite) {
  const auto pat = make_pattern("NNG");  // rc = "CNN"
  const auto r = run_finder("CTTTTT", pat);
  ASSERT_EQ(r.loci.size(), 1u);
  EXPECT_EQ(r.loci[0], 0u);
  EXPECT_EQ(r.flags[0], 2);  // reverse only
}

TEST(FinderKernel, FlagZeroWhenBothStrandsMatch) {
  const auto pat = make_pattern("NNG");  // fw needs G at 2, rc needs C at 0
  const auto r = run_finder("CTGTTT", pat);
  ASSERT_GE(r.loci.size(), 1u);
  EXPECT_EQ(r.loci[0], 0u);
  EXPECT_EQ(r.flags[0], 0);  // both
}

TEST(FinderKernel, AllNPatternMatchesEverywhere) {
  const auto pat = make_pattern("NNN");
  const auto r = run_finder("ACGTACGT", pat);
  EXPECT_EQ(r.loci.size(), 6u);  // 8 - 3 + 1
  for (u32 i = 0; i < r.loci.size(); ++i) EXPECT_EQ(r.loci[i], i);
}

TEST(FinderKernel, RespectsChrsizeBound) {
  // Tail work-items (padding beyond chrsize) must not report sites.
  const auto pat = make_pattern("NNN");
  const auto r = run_finder("ACGTA", pat, /*wg=*/16);  // gws padded to 16
  EXPECT_EQ(r.loci.size(), 3u);
}

TEST(FinderKernel, IupacPamRG) {
  const auto pat = make_pattern("NRG");  // R = A or G at position 1
  const auto r = run_finder("TAGTTTTGGTTT", pat);
  // "TAG" at 0 (A matches R), "TGG" at 6? positions: string TAGTTTTGGTTT:
  // idx0 TAG ok; idx6 TGG ok. rc(pattern) = CYN: needs C then Y.
  std::vector<u32> expect{0, 6};
  EXPECT_EQ(r.loci, expect);
}

// ---------------------------------------------------------------------------
// comparer
// ---------------------------------------------------------------------------

struct cmp_run {
  std::vector<u16> mm;
  std::vector<char> dir;
  std::vector<u32> loci;
};

cmp_run canonicalise(const std::vector<u16>& mm, const std::vector<char>& dir,
                     const std::vector<u32>& mloci, u32 count) {
  cmp_run r;
  std::vector<std::tuple<u32, char, u16>> z;
  for (u32 i = 0; i < count; ++i) z.emplace_back(mloci[i], dir[i], mm[i]);
  std::sort(z.begin(), z.end());
  for (auto& [l, d, m] : z) {
    r.loci.push_back(l);
    r.dir.push_back(d);
    r.mm.push_back(m);
  }
  return r;
}

/// opt6 runs through its own argument block: the chunk is 2-bit packed on
/// the fly and the query's per-word SWAR deny masks land in local memory.
cmp_run run_comparer_swar(const std::string& chunk, const std::vector<u32>& loci,
                          const std::vector<char>& flags, const device_pattern& query,
                          u16 threshold, usize wg, bool counting) {
  const u32 n = static_cast<u32>(loci.size());
  const usize cap = static_cast<usize>(n) * 2;
  std::vector<u16> mm(cap, 0);
  std::vector<char> dir(cap, 0);
  std::vector<u32> mloci(cap, 0);
  u32 count = 0;
  const auto sref = swar_pack(chunk);

  xpu::launch_config cfg;
  cfg.global[0] = util::round_up<usize>(n, wg);
  cfg.local[0] = wg;
  cfg.local_mem_bytes =
      query.swar.size() * sizeof(util::u64) + query.mask.size() * sizeof(u16) + 128;
  cfg.uses_barrier = true;
  comparer_swar_args a;
  a.locicnts = n;
  a.chr_packed2 = sref.packed2.data();
  a.chr_amb2 = sref.amb2.data();
  a.chr = chunk.data();
  a.loci = loci.data();
  a.flag = flags.data();
  a.comp_swar = query.swar_data();
  a.comp_mask = query.mask_data();
  a.plen = query.plen;
  a.swar_words = query.swar_words;
  a.threshold = threshold;
  a.mm_count = mm.data();
  a.direction = dir.data();
  a.mm_loci = mloci.data();
  a.entrycount = &count;
  dev().run(cfg, [&](xpu::xitem& it) {
    char* base = it.local_mem_base();
    const usize mask_off =
        util::round_up<usize>(query.swar.size() * sizeof(util::u64), 8);
    a.l_comp_swar = reinterpret_cast<util::u64*>(base);
    a.l_comp_mask = reinterpret_cast<u16*>(base + mask_off);
    if (counting) {
      comparer_swar_kernel<counting_mem, xpu::xitem, true>(it, a);
    } else {
      comparer_swar_kernel<direct_mem, xpu::xitem, true>(it, a);
    }
  });
  return canonicalise(mm, dir, mloci, count);
}

cmp_run run_comparer(comparer_variant v, const std::string& chunk,
                     const std::vector<u32>& loci, const std::vector<char>& flags,
                     const device_pattern& query, u16 threshold, usize wg = 8,
                     bool counting = false) {
  if (v == comparer_variant::opt6) {
    return run_comparer_swar(chunk, loci, flags, query, threshold, wg, counting);
  }
  const u32 n = static_cast<u32>(loci.size());
  const usize cap = static_cast<usize>(n) * 2;
  std::vector<u16> mm(cap, 0);
  std::vector<char> dir(cap, 0);
  std::vector<u32> mloci(cap, 0);
  u32 count = 0;

  xpu::launch_config cfg;
  cfg.global[0] = util::round_up<usize>(n, wg);
  cfg.local[0] = wg;
  cfg.local_mem_bytes =
      query.device_chars() * (1 + sizeof(i32)) + query.mask.size() * sizeof(u16) + 128;
  cfg.uses_barrier = true;
  comparer_args a;
  a.locicnts = n;
  a.chr = chunk.data();
  a.loci = loci.data();
  a.flag = flags.data();
  a.comp = query.data();
  a.comp_index = query.index_data();
  a.comp_mask = query.mask_data();
  a.plen = query.plen;
  a.threshold = threshold;
  a.mm_count = mm.data();
  a.direction = dir.data();
  a.mm_loci = mloci.data();
  a.entrycount = &count;
  auto body = [&](xpu::xitem& it) {
    char* base = it.local_mem_base();
    const usize idx_off = util::round_up<usize>(query.device_chars(), 8);
    const usize mask_off =
        util::round_up<usize>(idx_off + query.index.size() * sizeof(i32), 8);
    a.l_comp = base;
    a.l_comp_index = reinterpret_cast<i32*>(base + idx_off);
    a.l_comp_mask = reinterpret_cast<u16*>(base + mask_off);
    if (counting) {
      comparer_dispatch<counting_mem>(v, it, a);
    } else {
      comparer_dispatch<direct_mem>(v, it, a);
    }
  };
  dev().run(cfg, body);
  return canonicalise(mm, dir, mloci, count);
}

TEST(ComparerKernel, CountsMismatchesForward) {
  const auto query = make_query("ACGTN");
  // locus 0: ref "ACGTA" -> 0 mismatches at non-N positions
  // locus 5: ref "AGGTA" -> 1 mismatch (C vs G)
  const std::string chunk = "ACGTAAGGTA";
  const auto r = run_comparer(comparer_variant::base, chunk, {0, 5}, {1, 1}, query, 5);
  ASSERT_EQ(r.mm.size(), 2u);
  EXPECT_EQ(r.mm[0], 0);
  EXPECT_EQ(r.mm[1], 1);
  EXPECT_EQ(r.dir[0], '+');
}

TEST(ComparerKernel, ThresholdBoundaryInclusive) {
  const auto query = make_query("AAAA");
  const std::string chunk = "TTAATTTT";  // locus 0: AA at 2,3 -> 2 mismatches
  for (u16 threshold : {1, 2, 3}) {
    const auto r =
        run_comparer(comparer_variant::base, chunk, {0}, {1}, query, threshold);
    if (threshold >= 2) {
      ASSERT_EQ(r.mm.size(), 1u) << threshold;
      EXPECT_EQ(r.mm[0], 2);
    } else {
      EXPECT_TRUE(r.mm.empty()) << threshold;  // early exit, no entry
    }
  }
}

TEST(ComparerKernel, ReverseStrandUsesRcHalf) {
  const auto query = make_query("ACGT");  // rc half = "ACGT" rc = "ACGT"? no:
  // rc("ACGT") = "ACGT" (palindrome) — use a non-palindrome instead.
  const auto q2 = make_query("AAGG");  // rc = CCTT
  const std::string chunk = "CCTTTTTT";
  // flag 2: only reverse compare; ref "CCTT" equals rc(query) -> 0 mismatches.
  const auto r = run_comparer(comparer_variant::base, chunk, {0}, {2}, q2, 3);
  ASSERT_EQ(r.mm.size(), 1u);
  EXPECT_EQ(r.mm[0], 0);
  EXPECT_EQ(r.dir[0], '-');
}

TEST(ComparerKernel, FlagZeroProducesBothStrandEntries) {
  const auto q = make_query("NNNN");  // matches everything on both strands
  const std::string chunk = "ACGTACGT";
  const auto r = run_comparer(comparer_variant::base, chunk, {1}, {0}, q, 0);
  ASSERT_EQ(r.mm.size(), 2u);
  EXPECT_EQ(r.dir[0], '+');
  EXPECT_EQ(r.dir[1], '-');
  EXPECT_EQ(r.loci[0], 1u);
  EXPECT_EQ(r.loci[1], 1u);
}

TEST(ComparerKernel, SkipsStrandExcludedByFlag) {
  const auto q = make_query("NNNN");
  const std::string chunk = "ACGTACGT";
  const auto fw = run_comparer(comparer_variant::base, chunk, {0}, {1}, q, 0);
  ASSERT_EQ(fw.dir.size(), 1u);
  EXPECT_EQ(fw.dir[0], '+');
  const auto rc = run_comparer(comparer_variant::base, chunk, {0}, {2}, q, 0);
  ASSERT_EQ(rc.dir.size(), 1u);
  EXPECT_EQ(rc.dir[0], '-');
}

// Property: all variants (base..opt5) agree bit-for-bit on randomised inputs.
class VariantEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(VariantEquivalence, AgreesWithBase) {
  util::rng rng(static_cast<util::u64>(GetParam()));
  std::string chunk;
  for (int i = 0; i < 600; ++i) chunk += "ACGT"[rng.next_below(4)];
  const auto query = make_query("GGCCGACCTGTCGCTGACGCNNN");
  std::vector<u32> loci;
  std::vector<char> flags;
  for (u32 pos = 0; pos + 23 <= chunk.size(); pos += 7) {
    loci.push_back(pos);
    flags.push_back(static_cast<char>(rng.next_below(3)));
  }
  const auto base =
      run_comparer(comparer_variant::base, chunk, loci, flags, query, 5);
  for (int v = 1; v < kNumComparerVariants; ++v) {
    const auto other = run_comparer(static_cast<comparer_variant>(v), chunk, loci,
                                    flags, query, 5);
    EXPECT_EQ(other.mm, base.mm) << "variant " << v;
    EXPECT_EQ(other.dir, base.dir) << "variant " << v;
    EXPECT_EQ(other.loci, base.loci) << "variant " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VariantEquivalence, ::testing::Range(1, 9));

// Counting-policy checks: each optimisation removes exactly the accesses
// the paper describes.
prof::event_counts count_events(comparer_variant v) {
  util::rng rng(99);
  std::string chunk;
  for (int i = 0; i < 400; ++i) chunk += "ACGT"[rng.next_below(4)];
  const auto query = make_query("GGCCGACCTGTCGCTGACGCNNN");
  std::vector<u32> loci;
  std::vector<char> flags;
  for (u32 pos = 0; pos + 23 <= chunk.size(); pos += 11) {
    loci.push_back(pos);
    flags.push_back(static_cast<char>(pos % 3));
  }
  prof::counters::reset();
  (void)run_comparer(v, chunk, loci, flags, query, 5, 8, /*counting=*/true);
  return prof::counters::snapshot();
}

TEST(ComparerCounting, Opt1RemovesDuplicateReferenceLoads) {
  const auto base = count_events(comparer_variant::base);
  const auto opt1 = count_events(comparer_variant::opt1);
  // Same unique loads, fewer repeats (the duplicate chr loads disappear).
  EXPECT_EQ(opt1[prof::ev::global_load], base[prof::ev::global_load]);
  EXPECT_LT(opt1[prof::ev::global_load_repeat], base[prof::ev::global_load_repeat]);
  EXPECT_EQ(opt1[prof::ev::compare], base[prof::ev::compare]);
}

TEST(ComparerCounting, Opt2EliminatesLociFlagReloads) {
  const auto opt1 = count_events(comparer_variant::opt1);
  const auto opt2 = count_events(comparer_variant::opt2);
  EXPECT_LT(opt2[prof::ev::global_load_repeat], opt1[prof::ev::global_load_repeat]);
  EXPECT_EQ(opt2[prof::ev::local_load], opt1[prof::ev::local_load]);
}

TEST(ComparerCounting, Opt3SameTotalFetchWorkSpreadAcrossItems) {
  // Cooperative fetch moves the same number of local stores from work-item
  // 0 to the whole group — total volume is unchanged.
  const auto opt2 = count_events(comparer_variant::opt2);
  const auto opt3 = count_events(comparer_variant::opt3);
  EXPECT_EQ(opt3[prof::ev::local_store], opt2[prof::ev::local_store]);
  EXPECT_EQ(opt3[prof::ev::global_load], opt2[prof::ev::global_load]);
}

TEST(ComparerCounting, Opt4KeepsAccessCountsOfOpt3) {
  const auto opt3 = count_events(comparer_variant::opt3);
  const auto opt4 = count_events(comparer_variant::opt4);
  // opt4 changes registers/schedule, not executed memory ops.
  EXPECT_EQ(opt4[prof::ev::global_load], opt3[prof::ev::global_load]);
  EXPECT_EQ(opt4[prof::ev::local_load], opt3[prof::ev::local_load]);
  EXPECT_EQ(opt4[prof::ev::compare], opt3[prof::ev::compare]);
}

TEST(ComparerCounting, WorkItemsCounted) {
  const auto base = count_events(comparer_variant::base);
  EXPECT_GT(base[prof::ev::work_item], 0u);
  EXPECT_GT(base[prof::ev::loop_iter], 0u);
  EXPECT_GT(base[prof::ev::local_store], 0u);
}

TEST(ComparerCounting, Opt5SwapsChainEvalsForMaskOps) {
  // opt5 keeps opt3's memory behaviour (same fetch volume, same reference
  // loads, one local load per mismatch test) but replaces every Boolean
  // chain evaluation with exactly one deny-LUT mask op.
  const auto opt3 = count_events(comparer_variant::opt3);
  const auto opt5 = count_events(comparer_variant::opt5);
  EXPECT_EQ(opt3[prof::ev::mask_op], 0u);
  EXPECT_EQ(opt5[prof::ev::compare], 0u);
  EXPECT_EQ(opt5[prof::ev::mask_op], opt3[prof::ev::compare]);
  EXPECT_EQ(opt5[prof::ev::global_load], opt3[prof::ev::global_load]);
  EXPECT_EQ(opt5[prof::ev::global_load_repeat], opt3[prof::ev::global_load_repeat]);
  EXPECT_EQ(opt5[prof::ev::local_load], opt3[prof::ev::local_load]);
  EXPECT_EQ(opt5[prof::ev::local_store], opt3[prof::ev::local_store]);
}

// ---------------------------------------------------------------------------
// opt5 deny-LUT correctness
// ---------------------------------------------------------------------------

TEST(MaskLut, EquivalentToChainForAllCharPairs) {
  // The 16-bit deny LUT indexed by the reference nibble must reproduce
  // casoffinder_mismatch exactly — for every pattern char and every
  // reference byte, IUPAC or not (all non-IUPAC refs share nibble 0, whose
  // bit is derived from the chain's behaviour on a non-IUPAC stand-in).
  for (int p = 0; p < 256; ++p) {
    const char pc = static_cast<char>(p);
    const u16 mask = genome::casoffinder_mismatch_mask(pc);
    for (int r = 0; r < 256; ++r) {
      const char rc = static_cast<char>(r);
      const bool chain = genome::casoffinder_mismatch(pc, rc);
      const bool lut = ((mask >> genome::iupac_nibble(rc)) & 1u) != 0;
      ASSERT_EQ(lut, chain) << "pat=" << p << " ref=" << r;
    }
  }
}

TEST(FinderKernel, MaskVariantMatchesChainFinder) {
  util::rng rng(1234);
  std::string chunk;
  for (int i = 0; i < 800; ++i) chunk += "ACGTN"[rng.next_below(5)];
  const auto pat = make_pattern("NNNNNNNNNNNNNNNNNNNNNRG");
  const auto chain = run_finder(chunk, pat, 16, /*use_mask=*/false);
  const auto mask = run_finder(chunk, pat, 16, /*use_mask=*/true);
  EXPECT_EQ(mask.loci, chain.loci);
  EXPECT_EQ(mask.flags, chain.flags);
}

}  // namespace
