// Synthetic-assembly generator tests: determinism, composition, gaps,
// presets, planted-site ground truth, URI parsing.
#include <gtest/gtest.h>

#include "gtest_compat.hpp"

#include "genome/iupac.hpp"
#include "genome/synth.hpp"

namespace {

genome::synth_params small_params(util::u64 seed = 1) {
  genome::synth_params p;
  p.assembly = "test";
  p.chromosomes = {{"chrA", 50000}, {"chrB", 30000}};
  p.seed = seed;
  return p;
}

TEST(Synth, DeterministicInSeed) {
  auto a = genome::generate(small_params(7));
  auto b = genome::generate(small_params(7));
  ASSERT_EQ(a.chroms.size(), b.chroms.size());
  for (size_t i = 0; i < a.chroms.size(); ++i) EXPECT_EQ(a.chroms[i].seq, b.chroms[i].seq);
}

TEST(Synth, DifferentSeedsDiffer) {
  auto a = genome::generate(small_params(1));
  auto b = genome::generate(small_params(2));
  EXPECT_NE(a.chroms[0].seq, b.chroms[0].seq);
}

TEST(Synth, LengthsMatchSpec) {
  auto g = genome::generate(small_params());
  ASSERT_EQ(g.chroms.size(), 2u);
  EXPECT_EQ(g.chroms[0].name, "chrA");
  EXPECT_EQ(g.chroms[0].seq.size(), 50000u);
  EXPECT_EQ(g.chroms[1].seq.size(), 30000u);
}

TEST(Synth, GapFractionApproximatelyRespected) {
  auto p = small_params();
  p.gap_fraction = 0.10;
  auto g = genome::generate(p);
  const double n_frac =
      1.0 - static_cast<double>(g.non_n_bases()) / static_cast<double>(g.total_bases());
  EXPECT_NEAR(n_frac, 0.10, 0.03);
}

TEST(Synth, TelomeresAreGaps) {
  auto g = genome::generate(small_params());
  EXPECT_EQ(g.chroms[0].seq.front(), 'N');
  EXPECT_EQ(g.chroms[0].seq.back(), 'N');
}

TEST(Synth, GcContentApproximatelyRespected) {
  auto p = small_params();
  p.gap_fraction = 0;
  p.repeat_density = 0;
  p.gc_content = 0.41;
  auto g = genome::generate(p);
  util::usize gc = 0, total = 0;
  for (char c : g.chroms[0].seq) {
    if (c == 'G' || c == 'C') ++gc;
    if (c != 'N') ++total;
  }
  EXPECT_NEAR(static_cast<double>(gc) / total, 0.41, 0.02);
}

TEST(Synth, Hg19PresetProportionalLengths) {
  auto p = genome::hg19_like(1024);
  ASSERT_FALSE(p.chromosomes.empty());
  EXPECT_EQ(p.chromosomes[0].first, "chr1");
  // chr1:chr2 real ratio ~249:243 preserved.
  const double ratio = static_cast<double>(p.chromosomes[0].second) /
                       static_cast<double>(p.chromosomes[1].second);
  EXPECT_NEAR(ratio, 249.25 / 243.2, 0.01);
}

TEST(Synth, Hg38HasMoreSearchableSequenceThanHg19) {
  auto g19 = genome::generate(genome::hg19_like(2048));
  auto g38 = genome::generate(genome::hg38_like(2048));
  EXPECT_GT(g38.total_bases(), g19.total_bases());  // alt contigs included
  const double non_n_19 =
      static_cast<double>(g19.non_n_bases()) / static_cast<double>(g19.total_bases());
  const double non_n_38 =
      static_cast<double>(g38.non_n_bases()) / static_cast<double>(g38.total_bases());
  EXPECT_GT(non_n_38, non_n_19);  // fewer gaps
}

TEST(Synth, LargeScaleDropsTinyChromosomes) {
  auto p = genome::hg19_like(100000);
  for (const auto& [name, len] : p.chromosomes) EXPECT_GE(len, 2048u);
}

TEST(PlantSites, GroundTruthWrittenVerbatim) {
  auto g = genome::generate(small_params(9));
  const std::string pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  const std::string guide = "GGCCGACCTGTCGCTGACGCNGG";
  auto sites = genome::plant_sites(g, guide, pattern, 5, 0, 77);
  ASSERT_EQ(sites.size(), 5u);
  for (const auto& s : sites) {
    const std::string got =
        g.chroms[s.chrom_index].seq.substr(s.position, guide.size());
    EXPECT_EQ(got, s.written);
  }
}

TEST(PlantSites, ExactSitesMatchGuide) {
  auto g = genome::generate(small_params(10));
  const std::string pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  const std::string guide = "GGCCGACCTGTCGCTGACGCNGG";
  auto sites = genome::plant_sites(g, guide, pattern, 5, 0, 78);
  for (const auto& s : sites) {
    const std::string site = s.strand == '+'
                                 ? s.written
                                 : genome::reverse_complement(s.written);
    for (size_t k = 0; k < guide.size(); ++k) {
      EXPECT_FALSE(genome::casoffinder_mismatch(guide[k], site[k]))
          << "pos " << k << " of " << site;
    }
  }
}

TEST(PlantSites, MismatchCountIsExactUnderKernelSemantics) {
  auto g = genome::generate(small_params(11));
  const std::string pattern = "NNNNNNNNNNNNNNNNNNNNNRG";
  const std::string guide = "GGCCGACCTGTCGCTGACGCNGG";
  const std::string query = "GGCCGACCTGTCGCTGACGCNNN";  // N at PAM
  for (unsigned mm : {1u, 3u, 5u}) {
    auto sites = genome::plant_sites(g, guide, pattern, 4, mm, 100 + mm);
    for (const auto& s : sites) {
      const std::string site = s.strand == '+'
                                   ? s.written
                                   : genome::reverse_complement(s.written);
      unsigned count = 0;
      for (size_t k = 0; k < query.size(); ++k) {
        count += genome::casoffinder_mismatch(query[k], site[k]);
      }
      EXPECT_EQ(count, mm);
    }
  }
}

TEST(PlantSites, BothStrandsAppear) {
  auto g = genome::generate(small_params(12));
  auto sites = genome::plant_sites(g, "GGCCGACCTGTCGCTGACGCNGG",
                                   "NNNNNNNNNNNNNNNNNNNNNRG", 20, 0, 55);
  int fw = 0, rc = 0;
  for (const auto& s : sites) (s.strand == '+' ? fw : rc)++;
  EXPECT_GT(fw, 0);
  EXPECT_GT(rc, 0);
}

TEST(SynthUri, ParsesScaleAndSeed) {
  auto g = genome::load_synth_uri("synth:hg19:8192");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->assembly, "hg19-synth");
  auto g2 = genome::load_synth_uri("synth:hg38:8192:77");
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->assembly, "hg38-synth");
  EXPECT_FALSE(genome::load_synth_uri("/path/to/genome.fa").has_value());
}

TEST(SynthUriDeath, UnknownAssembly) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH((void)genome::load_synth_uri("synth:mouse"), "unknown synth assembly");
}

TEST(SynthUri, DeterministicForSameUri) {
  auto a = genome::load_synth_uri("synth:hg19:16384");
  auto b = genome::load_synth_uri("synth:hg19:16384");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->chroms[0].seq, b->chroms[0].seq);
}

}  // namespace
